// Property sweeps checking the optimized kernels against naive reference
// implementations over randomized shapes (parameterized gtest).
#include <tuple>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/conv.h"
#include "tensor/ops.h"

namespace mhbench {
namespace {

// Naive O(mnk) matmul.
Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at({i, kk})) * b.at({kk, j});
      }
      c.at({i, j}) = static_cast<Scalar>(acc);
    }
  }
  return c;
}

// Direct convolution (no im2col).
Tensor NaiveConv2d(const Tensor& x, const Tensor& w, int stride, int pad) {
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const int cout = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = (h + 2 * pad - kh) / stride + 1;
  const int ow = (wd + 2 * pad - kw) / stride + 1;
  Tensor y({n, cout, oh, ow});
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < cout; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = 0;
          for (int ic = 0; ic < cin; ++ic) {
            for (int ky = 0; ky < kh; ++ky) {
              for (int kx = 0; kx < kw; ++kx) {
                const int iy = oy * stride + ky - pad;
                const int ix = ox * stride + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(x.at({b, ic, iy, ix})) *
                       w.at({oc, ic, ky, kx});
              }
            }
          }
          y.at({b, oc, oy, ox}) = static_cast<Scalar>(acc);
        }
      }
    }
  }
  return y;
}

using MatShape = std::tuple<int, int, int>;  // m, k, n

class MatmulReference : public ::testing::TestWithParam<MatShape> {};

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulReference,
                         ::testing::Values(MatShape{1, 1, 1},
                                           MatShape{1, 7, 3},
                                           MatShape{5, 1, 5},
                                           MatShape{8, 8, 8},
                                           MatShape{3, 17, 11},
                                           MatShape{16, 5, 31}));

TEST_P(MatmulReference, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 10 + n));
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  EXPECT_TRUE(ops::Matmul(a, b).AllClose(NaiveMatmul(a, b), 1e-4f));
  EXPECT_TRUE(
      ops::MatmulTransB(a, ops::Transpose2d(b)).AllClose(NaiveMatmul(a, b),
                                                         1e-4f));
  EXPECT_TRUE(
      ops::MatmulTransA(ops::Transpose2d(a), b).AllClose(NaiveMatmul(a, b),
                                                         1e-4f));
}

using ConvCase = std::tuple<int, int, int, int, int>;  // cin,cout,k,stride,pad

class ConvReference : public ::testing::TestWithParam<ConvCase> {};

INSTANTIATE_TEST_SUITE_P(Shapes, ConvReference,
                         ::testing::Values(ConvCase{1, 1, 1, 1, 0},
                                           ConvCase{2, 3, 3, 1, 1},
                                           ConvCase{3, 2, 3, 2, 1},
                                           ConvCase{4, 4, 1, 1, 0},
                                           ConvCase{2, 5, 3, 1, 0},
                                           ConvCase{1, 2, 5, 1, 2}));

TEST_P(ConvReference, ForwardMatchesDirectConvolution) {
  const auto [cin, cout, k, stride, pad] = GetParam();
  Rng rng(static_cast<std::uint64_t>(cin * 100 + cout * 10 + k));
  const Tensor x = Tensor::Randn({2, cin, 8, 8}, rng);
  const Tensor w = Tensor::Randn({cout, cin, k, k}, rng, 0.5f);
  nn::Conv2d conv(w, Tensor(), stride, pad);
  const Tensor got = conv.Forward(x, false);
  const Tensor expect = NaiveConv2d(x, w, stride, pad);
  EXPECT_TRUE(got.AllClose(expect, 1e-3f));
}

}  // namespace
}  // namespace mhbench
