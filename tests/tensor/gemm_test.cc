// Tests for the packed GEMM kernel layer (tensor/gemm.h) and the scratch
// arena (tensor/scratch.h): fast-vs-reference agreement over adversarial
// shapes, the run-to-run bit-determinism contract, fused epilogues, and the
// zero-allocation steady state of the conv hot path.
#include "tensor/gemm.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/conv.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace mhbench {
namespace {

using kernels::Gemm;
using kernels::NaiveGemm;

std::vector<float> RandVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

// Independent textbook reference: double accumulation, no blocking, no
// shared code with the library kernels.
void RefGemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc,
             const float* bias) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = trans_a ? a[static_cast<std::size_t>(p) * lda + i]
                                  : a[static_cast<std::size_t>(i) * lda + p];
        const double bv = trans_b ? b[static_cast<std::size_t>(j) * ldb + p]
                                  : b[static_cast<std::size_t>(p) * ldb + j];
        s += av * bv;
      }
      float v = static_cast<float>(s);
      if (beta != 0.0f) v += beta * c[static_cast<std::size_t>(i) * ldc + j];
      if (bias != nullptr) v += bias[j];
      c[static_cast<std::size_t>(i) * ldc + j] = v;
    }
  }
}

// Runs one (m, n, k) case through all four transpose variants against the
// double-precision reference.
void CheckShape(int m, int n, int k, float tol) {
  Rng rng(static_cast<std::uint64_t>(m) * 1000003 + n * 1009 + k);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const int lda = ta ? m : k;
      const int ldb = tb ? k : n;
      const std::vector<float> a =
          RandVec(static_cast<std::size_t>(ta ? k : m) * lda, rng);
      const std::vector<float> b =
          RandVec(static_cast<std::size_t>(tb ? n : k) * ldb, rng);
      std::vector<float> got(static_cast<std::size_t>(m) * n, 7.0f);
      std::vector<float> want(static_cast<std::size_t>(m) * n, 7.0f);
      Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f, got.data(),
           n);
      RefGemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
              want.data(), n, nullptr);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], tol)
            << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
            << " tb=" << tb << " at " << i;
      }
    }
  }
}

TEST(GemmTest, AdversarialShapesMatchReference) {
  // Shapes straddling every blocking boundary: the register tile (kMR=6,
  // kNR=16), the cache blocks (kMC=96, kKC=256, kNC=1024), and degenerate
  // single-row/col cases.
  CheckShape(1, 1, 1, 1e-5f);
  CheckShape(1, 17, 3, 1e-4f);
  CheckShape(kernels::kMR, kernels::kNR, 8, 1e-4f);
  CheckShape(kernels::kMR + 1, kernels::kNR + 1, 9, 1e-4f);
  CheckShape(kernels::kMR - 1, kernels::kNR - 1, 33, 1e-4f);
  CheckShape(kernels::kMC, 32, kernels::kKC, 1e-3f);
  CheckShape(kernels::kMC + 5, 19, kernels::kKC + 7, 1e-3f);
  CheckShape(13, kernels::kNC + 3, 21, 1e-3f);
  CheckShape(64, 64, 2 * kernels::kKC + 5, 2e-3f);
}

TEST(GemmTest, BetaAccumulatesIntoExistingOutput) {
  Rng rng(11);
  const int m = 9, n = 20, k = 300;  // two k blocks
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  const std::vector<float> c0 = RandVec(static_cast<std::size_t>(m) * n, rng);
  for (const float beta : {1.0f, 0.5f}) {
    std::vector<float> got = c0;
    std::vector<float> want = c0;
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, beta, got.data(), n);
    RefGemm(false, false, m, n, k, a.data(), k, b.data(), n, beta,
            want.data(), n, nullptr);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3f) << "beta=" << beta << " at " << i;
    }
  }
}

TEST(GemmTest, BiasEpilogueBroadcastsOverRows) {
  Rng rng(12);
  const int m = 7, n = 33, k = 40;
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(n) * k, rng);
  const std::vector<float> bias = RandVec(static_cast<std::size_t>(n), rng);
  std::vector<float> got(static_cast<std::size_t>(m) * n);
  std::vector<float> want(static_cast<std::size_t>(m) * n);
  Gemm(false, true, m, n, k, a.data(), k, b.data(), k, 0.0f, got.data(), n,
       bias.data());
  RefGemm(false, true, m, n, k, a.data(), k, b.data(), k, 0.0f, want.data(),
          n, bias.data());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
  }
}

TEST(GemmTest, FastAgreesWithNaiveToRounding) {
  // Cross-backend agreement (gemm.h): both accumulate k ascending, but the
  // fast kernel blocks k and its build may fuse multiply-adds, so the two
  // agree only to rounding.  Bit-exact determinism is per-backend — see
  // RepeatedCallsAreBitIdentical and the fl parallel-determinism tests.
  Rng rng(13);
  for (const int k : {1, 5, kernels::kKC, kernels::kKC + 37}) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        const int m = 23, n = 37;
        const int lda = ta ? m : k;
        const int ldb = tb ? k : n;
        const std::vector<float> a =
            RandVec(static_cast<std::size_t>(ta ? k : m) * lda, rng);
        const std::vector<float> b =
            RandVec(static_cast<std::size_t>(tb ? n : k) * ldb, rng);
        std::vector<float> fast(static_cast<std::size_t>(m) * n);
        std::vector<float> naive(static_cast<std::size_t>(m) * n);
        Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
             fast.data(), n);
        NaiveGemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
                  naive.data(), n);
        const float tol = 1e-4f * static_cast<float>(k);
        for (std::size_t i = 0; i < fast.size(); ++i) {
          ASSERT_NEAR(fast[i], naive[i], tol)
              << "k=" << k << " ta=" << ta << " tb=" << tb << " at " << i;
        }
      }
    }
  }
}

TEST(GemmTest, RepeatedCallsAreBitIdentical) {
  Rng rng(14);
  const int m = 100, n = 50, k = 520;  // multiple blocks in every dimension
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> first(static_cast<std::size_t>(m) * n);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, first.data(), n);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<float> again(static_cast<std::size_t>(m) * n, -1.0f);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, again.data(),
         n);
    ASSERT_EQ(first, again) << "rep " << rep;
  }
}

TEST(GemmTest, BackendSwitchRoutesToNaive) {
  Rng rng(15);
  const int m = 8, n = 8, k = 8;
  const std::vector<float> a = RandVec(64, rng);
  const std::vector<float> b = RandVec(64, rng);
  std::vector<float> via_switch(64), direct(64);
  kernels::SetBackend(kernels::Backend::kNaive);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
       via_switch.data(), n);
  kernels::SetBackend(kernels::Backend::kFast);
  NaiveGemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
            direct.data(), n);
  EXPECT_EQ(via_switch, direct);
}

TEST(GemmTest, FlopCounterAdvancesByTwoMnk) {
  const std::uint64_t before = kernels::TotalGemmFlops();
  std::vector<float> a(12, 1.0f), b(12, 1.0f), c(9, 0.0f);
  Gemm(false, false, 3, 3, 4, a.data(), 4, b.data(), 3, 0.0f, c.data(), 3);
  EXPECT_EQ(kernels::TotalGemmFlops() - before, 2ull * 3 * 3 * 4);
}

TEST(GemmTest, ColSumAccReducesColumnsAndAccumulates) {
  Tensor rows({3, 4}, std::vector<Scalar>{1, 2, 3, 4,  //
                                          5, 6, 7, 8,  //
                                          9, 10, 11, 12});
  std::vector<float> out = {100.0f, 0.0f, 0.0f, -1.0f};
  kernels::ColSumAcc(rows.data().data(), 3, 4, 4, out.data());
  EXPECT_EQ(out, (std::vector<float>{115.0f, 18.0f, 21.0f, 23.0f}));
}

TEST(ScratchArenaTest, MarkRestoreReusesStorage) {
  kernels::ScratchArena arena;
  const auto mark = arena.Save();
  float* p1 = arena.Alloc(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
  arena.Restore(mark);
  float* p2 = arena.Alloc(1000);
  EXPECT_EQ(p1, p2);  // same storage, no growth
  arena.Restore(mark);
  EXPECT_EQ(arena.in_use_bytes(), 0u);
  EXPECT_GE(arena.peak_bytes(), 1000u * sizeof(float));
}

TEST(ScratchArenaTest, GrowsAcrossChunksAndRewinds) {
  kernels::ScratchArena arena;
  const auto mark = arena.Save();
  // Two allocations that cannot share the default 4 MiB chunk.
  float* a = arena.Alloc((std::size_t{1} << 20) - 64);
  float* b = arena.Alloc(std::size_t{1} << 20);
  EXPECT_NE(a, b);
  arena.Restore(mark);
  EXPECT_EQ(arena.in_use_bytes(), 0u);
  EXPECT_EQ(arena.Alloc(16), a);  // rewound to the first chunk
}

TEST(ScratchArenaTest, ConvForwardSteadyStateAllocatesNothing) {
  // The headline zero-allocation property: after one warmup step, repeated
  // Conv2d forward+backward steps perform no tensor-buffer heap allocations
  // and grow no scratch chunks.  (Shape-vector bookkeeping is exempt; see
  // DESIGN.md §5d.)
  Rng rng(16);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  for (int warmup = 0; warmup < 2; ++warmup) {
    Tensor y = conv.Forward(x, true);
    Tensor g(y.shape(), 1.0f);
    conv.Backward(g);
    kernels::ResetThreadScratch();
  }
  const auto heap_before = Tensor::ThreadAllocStats().heap_allocs;
  const auto chunks_before = kernels::ScratchChunkAllocs();
  for (int step = 0; step < 3; ++step) {
    Tensor y = conv.Forward(x, true);
    Tensor g(y.shape(), 1.0f);
    conv.Backward(g);
    kernels::ResetThreadScratch();
  }
  EXPECT_EQ(Tensor::ThreadAllocStats().heap_allocs, heap_before);
  EXPECT_EQ(kernels::ScratchChunkAllocs(), chunks_before);
}

TEST(ScratchArenaTest, PeakGaugeSeesThisThreadsArena) {
  kernels::ScratchScope scope;
  scope.Alloc(1 << 18);
  EXPECT_GE(kernels::ScratchPeakBytesAllThreads(),
            (std::size_t{1} << 18) * sizeof(float));
}

}  // namespace
}  // namespace mhbench
