// Tests for the packed GEMM kernel layer (tensor/gemm.h) and the scratch
// arena (tensor/scratch.h): fast-vs-reference agreement over adversarial
// shapes, the run-to-run bit-determinism contract, fused epilogues, and the
// zero-allocation steady state of the conv hot path.
#include "tensor/gemm.h"

#include <cmath>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/conv.h"
#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace mhbench {
namespace {

using kernels::Gemm;
using kernels::NaiveGemm;

std::vector<float> RandVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

// Independent textbook reference: double accumulation, no blocking, no
// shared code with the library kernels.
void RefGemm(bool trans_a, bool trans_b, int m, int n, int k, const float* a,
             int lda, const float* b, int ldb, float beta, float* c, int ldc,
             const float* bias) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = trans_a ? a[static_cast<std::size_t>(p) * lda + i]
                                  : a[static_cast<std::size_t>(i) * lda + p];
        const double bv = trans_b ? b[static_cast<std::size_t>(j) * ldb + p]
                                  : b[static_cast<std::size_t>(p) * ldb + j];
        s += av * bv;
      }
      float v = static_cast<float>(s);
      if (beta != 0.0f) v += beta * c[static_cast<std::size_t>(i) * ldc + j];
      if (bias != nullptr) v += bias[j];
      c[static_cast<std::size_t>(i) * ldc + j] = v;
    }
  }
}

// Runs one (m, n, k) case through all four transpose variants against the
// double-precision reference.
void CheckShape(int m, int n, int k, float tol) {
  Rng rng(static_cast<std::uint64_t>(m) * 1000003 + n * 1009 + k);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const int lda = ta ? m : k;
      const int ldb = tb ? k : n;
      const std::vector<float> a =
          RandVec(static_cast<std::size_t>(ta ? k : m) * lda, rng);
      const std::vector<float> b =
          RandVec(static_cast<std::size_t>(tb ? n : k) * ldb, rng);
      std::vector<float> got(static_cast<std::size_t>(m) * n, 7.0f);
      std::vector<float> want(static_cast<std::size_t>(m) * n, 7.0f);
      Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f, got.data(),
           n);
      RefGemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
              want.data(), n, nullptr);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], tol)
            << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
            << " tb=" << tb << " at " << i;
      }
    }
  }
}

TEST(GemmTest, AdversarialShapesMatchReference) {
  // Shapes straddling every blocking boundary: the register tile (kMR=6,
  // kNR=16), the cache blocks (kMC=96, kKC=256, kNC=1024), and degenerate
  // single-row/col cases.
  CheckShape(1, 1, 1, 1e-5f);
  CheckShape(1, 17, 3, 1e-4f);
  CheckShape(kernels::kMR, kernels::kNR, 8, 1e-4f);
  CheckShape(kernels::kMR + 1, kernels::kNR + 1, 9, 1e-4f);
  CheckShape(kernels::kMR - 1, kernels::kNR - 1, 33, 1e-4f);
  CheckShape(kernels::kMC, 32, kernels::kKC, 1e-3f);
  CheckShape(kernels::kMC + 5, 19, kernels::kKC + 7, 1e-3f);
  CheckShape(13, kernels::kNC + 3, 21, 1e-3f);
  CheckShape(64, 64, 2 * kernels::kKC + 5, 2e-3f);
}

TEST(GemmTest, BetaAccumulatesIntoExistingOutput) {
  Rng rng(11);
  const int m = 9, n = 20, k = 300;  // two k blocks
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  const std::vector<float> c0 = RandVec(static_cast<std::size_t>(m) * n, rng);
  for (const float beta : {1.0f, 0.5f}) {
    std::vector<float> got = c0;
    std::vector<float> want = c0;
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, beta, got.data(), n);
    RefGemm(false, false, m, n, k, a.data(), k, b.data(), n, beta,
            want.data(), n, nullptr);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], 1e-3f) << "beta=" << beta << " at " << i;
    }
  }
}

TEST(GemmTest, BiasEpilogueBroadcastsOverRows) {
  Rng rng(12);
  const int m = 7, n = 33, k = 40;
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(n) * k, rng);
  const std::vector<float> bias = RandVec(static_cast<std::size_t>(n), rng);
  std::vector<float> got(static_cast<std::size_t>(m) * n);
  std::vector<float> want(static_cast<std::size_t>(m) * n);
  Gemm(false, true, m, n, k, a.data(), k, b.data(), k, 0.0f, got.data(), n,
       bias.data());
  RefGemm(false, true, m, n, k, a.data(), k, b.data(), k, 0.0f, want.data(),
          n, bias.data());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
  }
}

TEST(GemmTest, FastAgreesWithNaiveToRounding) {
  // Cross-backend agreement (gemm.h): both accumulate k ascending, but the
  // fast kernel blocks k and its build may fuse multiply-adds, so the two
  // agree only to rounding.  Bit-exact determinism is per-backend — see
  // RepeatedCallsAreBitIdentical and the fl parallel-determinism tests.
  Rng rng(13);
  for (const int k : {1, 5, kernels::kKC, kernels::kKC + 37}) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        const int m = 23, n = 37;
        const int lda = ta ? m : k;
        const int ldb = tb ? k : n;
        const std::vector<float> a =
            RandVec(static_cast<std::size_t>(ta ? k : m) * lda, rng);
        const std::vector<float> b =
            RandVec(static_cast<std::size_t>(tb ? n : k) * ldb, rng);
        std::vector<float> fast(static_cast<std::size_t>(m) * n);
        std::vector<float> naive(static_cast<std::size_t>(m) * n);
        Gemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
             fast.data(), n);
        NaiveGemm(ta, tb, m, n, k, a.data(), lda, b.data(), ldb, 0.0f,
                  naive.data(), n);
        const float tol = 1e-4f * static_cast<float>(k);
        for (std::size_t i = 0; i < fast.size(); ++i) {
          ASSERT_NEAR(fast[i], naive[i], tol)
              << "k=" << k << " ta=" << ta << " tb=" << tb << " at " << i;
        }
      }
    }
  }
}

TEST(GemmTest, RepeatedCallsAreBitIdentical) {
  Rng rng(14);
  const int m = 100, n = 50, k = 520;  // multiple blocks in every dimension
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> first(static_cast<std::size_t>(m) * n);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, first.data(), n);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<float> again(static_cast<std::size_t>(m) * n, -1.0f);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, again.data(),
         n);
    ASSERT_EQ(first, again) << "rep " << rep;
  }
}

TEST(GemmTest, BackendSwitchRoutesToNaive) {
  Rng rng(15);
  const int m = 8, n = 8, k = 8;
  const std::vector<float> a = RandVec(64, rng);
  const std::vector<float> b = RandVec(64, rng);
  std::vector<float> via_switch(64), direct(64);
  kernels::SetBackend(kernels::Backend::kNaive);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
       via_switch.data(), n);
  kernels::SetBackend(kernels::Backend::kFast);
  NaiveGemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
            direct.data(), n);
  EXPECT_EQ(via_switch, direct);
}

TEST(GemmTest, FlopCounterAdvancesByTwoMnk) {
  const std::uint64_t before = kernels::TotalGemmFlops();
  std::vector<float> a(12, 1.0f), b(12, 1.0f), c(9, 0.0f);
  Gemm(false, false, 3, 3, 4, a.data(), 4, b.data(), 3, 0.0f, c.data(), 3);
  EXPECT_EQ(kernels::TotalGemmFlops() - before, 2ull * 3 * 3 * 4);
}

TEST(GemmTest, ZeroSizedDimsFollowTheDegenerateContract) {
  // m == 0 / n == 0: no-op (C untouched).  k == 0: the empty contraction,
  // C = beta*C + bias, on every entry point.
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> before = c;
  Gemm(false, false, 0, 2, 3, nullptr, 3, nullptr, 2, 0.5f, c.data(), 2);
  Gemm(false, false, 2, 0, 3, nullptr, 3, nullptr, 0, 0.5f, c.data(), 2);
  NaiveGemm(false, false, 0, 2, 3, nullptr, 3, nullptr, 2, 0.5f, c.data(), 2);
  EXPECT_EQ(c, before);

  const std::vector<float> bias = {10.0f, 20.0f};
  Gemm(false, false, 2, 2, 0, nullptr, 1, nullptr, 2, 0.5f, c.data(), 2,
       bias.data());
  EXPECT_EQ(c, (std::vector<float>{10.5f, 21.0f, 11.5f, 22.0f}));

  std::vector<float> c2 = before;
  NaiveGemm(false, false, 2, 2, 0, nullptr, 1, nullptr, 2, 0.5f, c2.data(), 2,
            bias.data());
  EXPECT_EQ(c2, c);

  // beta == 0, k == 0 must fully define (zero + bias) an uninitialized C.
  std::vector<float> c3 = {-7.0f, -7.0f, -7.0f, -7.0f};
  Gemm(false, false, 2, 2, 0, nullptr, 1, nullptr, 2, 0.0f, c3.data(), 2,
       bias.data());
  EXPECT_EQ(c3, (std::vector<float>{10.0f, 20.0f, 10.0f, 20.0f}));

  std::vector<float> c4 = {5.0f, 5.0f};
  kernels::GemmBf16(false, false, 1, 2, 0, nullptr, 1, nullptr, 2, 1.0f,
                    c4.data(), 2, bias.data());
  EXPECT_EQ(c4, (std::vector<float>{15.0f, 25.0f}));
  std::vector<float> c5 = {5.0f, 5.0f};
  kernels::GemmInt8(false, false, 1, 2, 0, nullptr, 1, nullptr, 2, 1.0f,
                    c5.data(), 2, bias.data());
  EXPECT_EQ(c5, (std::vector<float>{15.0f, 25.0f}));
}

// Runs one shape serially and through pools of several worker counts; the
// threaded macro-tile path must be bit-identical to the serial fast path
// (gemm.h's ownership-map contract), not merely close.
void CheckThreadedBitExact(int m, int n, int k) {
  Rng rng(static_cast<std::uint64_t>(m) * 31 + n * 7 + k);
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  const std::vector<float> bias = RandVec(static_cast<std::size_t>(n), rng);
  std::vector<float> serial(static_cast<std::size_t>(m) * n, 0.25f);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.5f, serial.data(),
       n, bias.data());
  for (const int workers : {1, 2, 4, 8}) {
    core::ThreadPool pool(workers);
    core::ThreadPool* prev = kernels::SetGemmThreadPool(&pool);
    std::vector<float> threaded(static_cast<std::size_t>(m) * n, 0.25f);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.5f,
         threaded.data(), n, bias.data());
    kernels::SetGemmThreadPool(prev);
    ASSERT_EQ(serial, threaded)
        << "m=" << m << " n=" << n << " k=" << k << " workers=" << workers;
  }
}

TEST(GemmTest, ThreadedMatchesSerialBitExactAtAnyWorkerCount) {
  // All shapes exceed the engagement threshold; they straddle the threaded
  // tiling in different ways (square multi-block, ragged tail panels in all
  // three dimensions, single row-block with many column stripes).
  CheckThreadedBitExact(256, 256, 256);
  CheckThreadedBitExact(301, 97, 530);
  CheckThreadedBitExact(6, 2048, 600);
}

TEST(GemmTest, ThreadedBelowThresholdAndNestedStaysSerial) {
  // Small calls under a pool take the serial path (engagement is a pure
  // wall-time decision), and a *large* Gemm issued from inside a pool
  // worker never re-submits (nested guard — the FL engine's per-client
  // training must stay single-threaded under client dispatch); either way
  // the result must be the bit-exact serial one.
  Rng rng(21);
  const int m = 256, n = 256, k = 256;  // over the engagement threshold
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  std::vector<float> serial(static_cast<std::size_t>(m) * n);
  Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, serial.data(),
       n);
  const int ms = 24, ns = 32, ks = 17;
  std::vector<float> serial_small(static_cast<std::size_t>(ms) * ns);
  Gemm(false, false, ms, ns, ks, a.data(), ks, b.data(), ns, 0.0f,
       serial_small.data(), ns);

  core::ThreadPool pool(3);
  core::ThreadPool* prev = kernels::SetGemmThreadPool(&pool);
  std::vector<float> small(static_cast<std::size_t>(ms) * ns);
  Gemm(false, false, ms, ns, ks, a.data(), ks, b.data(), ns, 0.0f,
       small.data(), ns);
  std::vector<float> nested(static_cast<std::size_t>(m) * n);
  bool ran_in_worker = false;
  std::promise<void> done;
  pool.Submit([&] {
    ran_in_worker = core::ThreadPool::InWorker();
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, nested.data(),
         n);
    done.set_value();
  });
  done.get_future().wait();
  kernels::SetGemmThreadPool(prev);
  EXPECT_TRUE(ran_in_worker);
  EXPECT_EQ(serial_small, small);
  EXPECT_EQ(serial, nested);
}

TEST(GemmTest, Bf16AgreesWithReferenceToReducedPrecision) {
  Rng rng(22);
  for (const int k : {8, 96, 520}) {
    const int m = 33, n = 47;
    const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
    const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> got(static_cast<std::size_t>(m) * n);
    std::vector<float> want(static_cast<std::size_t>(m) * n);
    kernels::GemmBf16(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
                      got.data(), n);
    RefGemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
            want.data(), n, nullptr);
    // bf16 keeps 8 mantissa bits per operand: per-product relative error
    // ~2^-8, accumulating like a random walk over k unit-variance products.
    const float tol = 0.03f * std::sqrt(static_cast<float>(k));
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], tol) << "k=" << k << " at " << i;
    }
  }
}

TEST(GemmTest, Int8AgreesWithReferenceToQuantizationTolerance) {
  Rng rng(23);
  for (const int k : {8, 96, 520}) {
    const int m = 33, n = 47;
    const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
    const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> got(static_cast<std::size_t>(m) * n);
    std::vector<float> want(static_cast<std::size_t>(m) * n);
    kernels::GemmInt8(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
                      got.data(), n);
    RefGemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
            want.data(), n, nullptr);
    // Per-tensor symmetric quantization of N(0,1) data: each operand's
    // rounding error is bounded by one step (~max|x|/127), accumulating
    // like a random walk over k — loose but shape-scaled.
    const float tol = 0.25f * std::sqrt(static_cast<float>(k));
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], tol) << "k=" << k << " at " << i;
    }
  }
}

TEST(GemmTest, ReducedPrecisionIsBitDeterministicIncludingThreaded) {
  Rng rng(24);
  const int m = 96, n = 128, k = 256;
  const std::vector<float> a = RandVec(static_cast<std::size_t>(m) * k, rng);
  const std::vector<float> b = RandVec(static_cast<std::size_t>(k) * n, rng);
  for (const bool bf16 : {true, false}) {
    std::vector<float> first(static_cast<std::size_t>(m) * n);
    const auto run = [&](float* c) {
      if (bf16) {
        kernels::GemmBf16(false, false, m, n, k, a.data(), k, b.data(), n,
                          0.0f, c, n);
      } else {
        kernels::GemmInt8(false, false, m, n, k, a.data(), k, b.data(), n,
                          0.0f, c, n);
      }
    };
    run(first.data());
    std::vector<float> again(static_cast<std::size_t>(m) * n, -1.0f);
    run(again.data());
    ASSERT_EQ(first, again) << "bf16=" << bf16;
    core::ThreadPool pool(4);
    core::ThreadPool* prev = kernels::SetGemmThreadPool(&pool);
    std::vector<float> threaded(static_cast<std::size_t>(m) * n, -1.0f);
    run(threaded.data());
    kernels::SetGemmThreadPool(prev);
    ASSERT_EQ(first, threaded) << "bf16=" << bf16;
  }
}

TEST(GemmTest, EvalPrecisionGuardReroutesGemmAndCountsSeparately) {
  Rng rng(25);
  const int m = 8, n = 8, k = 8;
  const std::vector<float> a = RandVec(64, rng);
  const std::vector<float> b = RandVec(64, rng);
  std::vector<float> direct(64), routed(64);
  kernels::GemmBf16(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
                    direct.data(), n);
  EXPECT_EQ(kernels::ActiveEvalPrecision(), kernels::EvalPrecision::kF32);
  const std::uint64_t f32_before = kernels::TotalGemmFlops();
  const std::uint64_t bf16_before = kernels::TotalGemmFlopsBf16();
  const std::uint64_t int8_before = kernels::TotalGemmFlopsInt8();
  {
    kernels::EvalPrecisionGuard guard(kernels::EvalPrecision::kBf16);
    EXPECT_EQ(kernels::ActiveEvalPrecision(), kernels::EvalPrecision::kBf16);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, routed.data(),
         n);
  }
  EXPECT_EQ(kernels::ActiveEvalPrecision(), kernels::EvalPrecision::kF32);
  EXPECT_EQ(routed, direct);
  // Rerouted work lands on the bf16 counter only.
  EXPECT_EQ(kernels::TotalGemmFlops(), f32_before);
  EXPECT_EQ(kernels::TotalGemmFlopsBf16() - bf16_before, 2ull * m * n * k);
  {
    kernels::EvalPrecisionGuard guard(kernels::EvalPrecision::kInt8);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, routed.data(),
         n);
  }
  EXPECT_EQ(kernels::TotalGemmFlopsInt8() - int8_before, 2ull * m * n * k);
  // NaiveGemm is never rerouted: it must keep counting as f32.
  {
    kernels::EvalPrecisionGuard guard(kernels::EvalPrecision::kBf16);
    NaiveGemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f,
              routed.data(), n);
  }
  EXPECT_EQ(kernels::TotalGemmFlops() - f32_before, 2ull * m * n * k);
}

TEST(GemmTest, EveryAvailableIsaMatchesReferenceAndRepeats) {
  const kernels::Isa saved = kernels::CurrentIsa();
  for (const kernels::Isa isa :
       {kernels::Isa::kScalar, kernels::Isa::kAvx2, kernels::Isa::kAvx512}) {
    if (!kernels::IsaAvailable(isa)) continue;
    ASSERT_TRUE(kernels::SetIsa(isa)) << kernels::IsaName(isa);
    ASSERT_EQ(kernels::CurrentIsa(), isa);
    CheckShape(kernels::kMC + 5, 19, kernels::kKC + 7, 1e-3f);
    // Within one variant, repeats stay bit-identical.
    Rng rng(26);
    const int m = 50, n = 70, k = 300;
    const std::vector<float> a =
        RandVec(static_cast<std::size_t>(m) * k, rng);
    const std::vector<float> b =
        RandVec(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> first(static_cast<std::size_t>(m) * n);
    std::vector<float> again(static_cast<std::size_t>(m) * n, -1.0f);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, first.data(),
         n);
    Gemm(false, false, m, n, k, a.data(), k, b.data(), n, 0.0f, again.data(),
         n);
    ASSERT_EQ(first, again) << kernels::IsaName(isa);
  }
  ASSERT_TRUE(kernels::SetIsa(saved));
  // Scalar is always compiled in; the backend name must reflect dispatch.
  EXPECT_TRUE(kernels::IsaAvailable(kernels::Isa::kScalar));
  EXPECT_STREQ(kernels::KernelBackendName(), kernels::IsaName(saved));
}

TEST(GemmTest, ColSumAccReducesColumnsAndAccumulates) {
  Tensor rows({3, 4}, std::vector<Scalar>{1, 2, 3, 4,  //
                                          5, 6, 7, 8,  //
                                          9, 10, 11, 12});
  std::vector<float> out = {100.0f, 0.0f, 0.0f, -1.0f};
  kernels::ColSumAcc(rows.data().data(), 3, 4, 4, out.data());
  EXPECT_EQ(out, (std::vector<float>{115.0f, 18.0f, 21.0f, 23.0f}));
}

TEST(ScratchArenaTest, MarkRestoreReusesStorage) {
  kernels::ScratchArena arena;
  const auto mark = arena.Save();
  float* p1 = arena.Alloc(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
  arena.Restore(mark);
  float* p2 = arena.Alloc(1000);
  EXPECT_EQ(p1, p2);  // same storage, no growth
  arena.Restore(mark);
  EXPECT_EQ(arena.in_use_bytes(), 0u);
  EXPECT_GE(arena.peak_bytes(), 1000u * sizeof(float));
}

TEST(ScratchArenaTest, GrowsAcrossChunksAndRewinds) {
  kernels::ScratchArena arena;
  const auto mark = arena.Save();
  // Two allocations that cannot share the default 4 MiB chunk.
  float* a = arena.Alloc((std::size_t{1} << 20) - 64);
  float* b = arena.Alloc(std::size_t{1} << 20);
  EXPECT_NE(a, b);
  arena.Restore(mark);
  EXPECT_EQ(arena.in_use_bytes(), 0u);
  EXPECT_EQ(arena.Alloc(16), a);  // rewound to the first chunk
}

TEST(ScratchArenaTest, ConvForwardSteadyStateAllocatesNothing) {
  // The headline zero-allocation property: after one warmup step, repeated
  // Conv2d forward+backward steps perform no tensor-buffer heap allocations
  // and grow no scratch chunks.  (Shape-vector bookkeeping is exempt; see
  // DESIGN.md §5d.)
  Rng rng(16);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  for (int warmup = 0; warmup < 2; ++warmup) {
    Tensor y = conv.Forward(x, true);
    Tensor g(y.shape(), 1.0f);
    conv.Backward(g);
    kernels::ResetThreadScratch();
  }
  const auto heap_before = Tensor::ThreadAllocStats().heap_allocs;
  const auto chunks_before = kernels::ScratchChunkAllocs();
  for (int step = 0; step < 3; ++step) {
    Tensor y = conv.Forward(x, true);
    Tensor g(y.shape(), 1.0f);
    conv.Backward(g);
    kernels::ResetThreadScratch();
  }
  EXPECT_EQ(Tensor::ThreadAllocStats().heap_allocs, heap_before);
  EXPECT_EQ(kernels::ScratchChunkAllocs(), chunks_before);
}

TEST(ScratchArenaTest, PeakGaugeSeesThisThreadsArena) {
  kernels::ScratchScope scope;
  scope.Alloc(1 << 18);
  EXPECT_GE(kernels::ScratchPeakBytesAllThreads(),
            (std::size_t{1} << 18) * sizeof(float));
}

}  // namespace
}  // namespace mhbench
