#!/usr/bin/env python3
"""Tests for tools/bench_report.py and the bench mode of tools/mhb_diff.py.

Covers the pairing rules (fast/naive, threaded/serial per thread count,
reduced-precision/f32), real conv GFLOP/s, the threads-exceed-CPUs
annotation, the debug-library refusal, and mhb_diff's per-entry speedup
gating (including the exemption for unattainable thread counts).
"""
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
BENCH_REPORT = ROOT / "tools" / "bench_report.py"
MHB_DIFF = ROOT / "tools" / "mhb_diff.py"


def run_bench(b_name, ns, gflops=None, reps=3):
    """Synthetic per-repetition google-benchmark rows for one benchmark."""
    rows = []
    for i in range(reps):
        row = {
            "run_name": b_name,
            "run_type": "iteration",
            "real_time": ns + i,  # monotone jitter: p50 = ns + 1 for reps=3
            "time_unit": "ns",
        }
        if gflops is not None:
            row["items_per_second"] = gflops * 1e9
        rows.append(row)
    return rows


def raw_json(num_cpus=2, build_type="release", backend="avx2",
             mhb_build_type=None):
    benchmarks = []
    # f32 fast vs naive at two sizes; /256 also serves as the serial
    # baseline of the threaded and reduced-precision entries.
    benchmarks += run_bench("BM_Matmul/128", 1000, gflops=4.0)
    benchmarks += run_bench("BM_MatmulNaive/128", 4000, gflops=1.0)
    benchmarks += run_bench("BM_Matmul/256", 8000, gflops=4.0)
    benchmarks += run_bench("BM_MatmulNaive/256", 32000, gflops=1.0)
    benchmarks += run_bench("BM_MatmulThreaded/256/1", 8000, gflops=4.0)
    benchmarks += run_bench("BM_MatmulThreaded/256/2", 4200, gflops=7.6)
    benchmarks += run_bench("BM_MatmulThreaded/256/4", 7000, gflops=4.6)
    benchmarks += run_bench("BM_MatmulBf16/256", 9000, gflops=3.5)
    benchmarks += run_bench("BM_MatmulInt8/256", 12000, gflops=2.7)
    benchmarks += run_bench("BM_Conv2dForward", 50000, gflops=2.5)
    benchmarks += run_bench("BM_Conv2dForwardNaive", 150000, gflops=0.8)
    benchmarks += run_bench("BM_Conv2dBackward", 90000, gflops=2.6)
    benchmarks += run_bench("BM_Conv2dBackwardNaive", 270000, gflops=0.9)
    context = {
        "host_name": "testhost",
        "num_cpus": num_cpus,
        "mhz_per_cpu": 2000,
        "date": "2026-01-01T00:00:00+00:00",
        "library_build_type": build_type,
        "mhb_kernel_backend": backend,
    }
    if mhb_build_type is not None:
        context["mhb_build_type"] = mhb_build_type
    return {"context": context, "benchmarks": benchmarks}


def run_report(tmp, raw, *flags):
    raw_path = os.path.join(tmp, "raw.json")
    out_path = os.path.join(tmp, "out.json")
    with open(raw_path, "w") as f:
        json.dump(raw, f)
    proc = subprocess.run(
        [sys.executable, str(BENCH_REPORT), *flags, raw_path, out_path],
        capture_output=True, text=True)
    report = None
    if os.path.exists(out_path):
        with open(out_path) as f:
            report = json.load(f)
    return proc, report


class BenchReportTest(unittest.TestCase):
    def test_pairing_and_annotations(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc, report = run_report(tmp, raw_json(num_cpus=2))
            self.assertEqual(proc.returncode, 0, proc.stderr)
            kernels = report["kernels"]

            # Naive pairing unchanged, with real conv GFLOP/s.
            self.assertAlmostEqual(
                kernels["Matmul/128"]["speedup"], 4.0, places=1)
            self.assertTrue(kernels["Matmul/128"]["meets_target"])
            self.assertIsNotNone(kernels["Conv2dForward"]["fast"]["gflops"])
            self.assertIsNotNone(kernels["Conv2dBackward"]["fast"]["gflops"])
            self.assertAlmostEqual(
                kernels["Conv2dForward"]["speedup"], 3.0, places=1)

            # Threaded entries pair against the serial BM_Matmul/256 and
            # gate independently per thread count.
            t2 = kernels["MatmulThreaded/256/2"]
            self.assertEqual(t2["threads"], 2)
            self.assertEqual(t2["serial"], kernels["Matmul/256"]["fast"])
            self.assertAlmostEqual(t2["speedup"], 1.9, places=1)
            self.assertNotIn("threads_exceed_cpus", t2)
            t4 = kernels["MatmulThreaded/256/4"]
            self.assertTrue(t4["threads_exceed_cpus"])
            self.assertEqual(t4["target_speedup"], 2.5)
            self.assertFalse(t4["meets_target"])

            # Reduced-precision entries pair against the f32 fast kernel.
            bf16 = kernels["MatmulBf16/256"]
            self.assertEqual(bf16["f32"], kernels["Matmul/256"]["fast"])
            self.assertLess(bf16["speedup"], 1.0)
            self.assertIn("f32", kernels["MatmulInt8/256"])

            # Backend comes from the benchmark's own context, not env.
            self.assertEqual(report["context"]["kernel_backend"], "avx2")
            self.assertEqual(report["context"]["num_cpus"], 2)

    def test_debug_build_refused_without_override(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc, report = run_report(tmp, raw_json(build_type="debug"))
            self.assertEqual(proc.returncode, 3)
            self.assertIsNone(report)
            self.assertIn("debug", proc.stderr)

            proc, report = run_report(
                tmp, raw_json(build_type="debug"), "--allow-debug")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertEqual(
                report["context"]["benchmark_lib_build_type"], "debug")

            # bench_micro's own build-type stamp outranks the benchmark
            # library's: an -O3 binary linked against a debug libbenchmark
            # is a legitimate baseline (and vice versa is refused).
            proc, report = run_report(
                tmp, raw_json(build_type="debug", mhb_build_type="release"))
            self.assertEqual(proc.returncode, 0, proc.stderr)
            self.assertEqual(report["context"]["build_type"], "release")
            self.assertEqual(
                report["context"]["benchmark_lib_build_type"], "debug")
            proc, report = run_report(
                tmp, raw_json(build_type="release", mhb_build_type="debug"))
            self.assertEqual(proc.returncode, 3)

    def test_diff_gates_thread_counts_independently(self):
        with tempfile.TemporaryDirectory() as tmp:
            _, base = run_report(tmp, raw_json(num_cpus=4))
            base_path = os.path.join(tmp, "base.json")
            with open(base_path, "w") as f:
                json.dump(base, f)

            # Candidate 1: the 2-thread speedup collapses -> regression,
            # even though every other entry (including 4-thread) holds.
            cand = json.loads(json.dumps(base))
            cand["kernels"]["MatmulThreaded/256/2"]["speedup"] = 1.0
            cand_path = os.path.join(tmp, "cand.json")
            with open(cand_path, "w") as f:
                json.dump(cand, f)
            proc = subprocess.run(
                [sys.executable, str(MHB_DIFF), base_path, cand_path],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertIn("MatmulThreaded/256/2", proc.stdout)
            self.assertNotIn("MatmulThreaded/256/4", proc.stdout)

            # Candidate 2: the same collapse on an entry flagged
            # threads_exceed_cpus is exempt (noted, not gated).
            cand2 = json.loads(json.dumps(base))
            cand2["kernels"]["MatmulThreaded/256/2"]["speedup"] = 1.0
            cand2["kernels"]["MatmulThreaded/256/2"][
                "threads_exceed_cpus"] = True
            cand2_path = os.path.join(tmp, "cand2.json")
            with open(cand2_path, "w") as f:
                json.dump(cand2, f)
            proc = subprocess.run(
                [sys.executable, str(MHB_DIFF), base_path, cand2_path],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 0,
                             proc.stdout + proc.stderr)
            self.assertIn("speedup gate skipped", proc.stderr)

    def test_diff_refuses_backend_mismatch(self):
        with tempfile.TemporaryDirectory() as tmp:
            _, base = run_report(tmp, raw_json(backend="avx2"))
            _, cand = run_report(tmp, raw_json(backend="scalar"))
            base_path = os.path.join(tmp, "base.json")
            cand_path = os.path.join(tmp, "cand.json")
            with open(base_path, "w") as f:
                json.dump(base, f)
            with open(cand_path, "w") as f:
                json.dump(cand, f)
            proc = subprocess.run(
                [sys.executable, str(MHB_DIFF), base_path, cand_path],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 2)
            self.assertIn("backend mismatch", proc.stderr)


if __name__ == "__main__":
    unittest.main()
