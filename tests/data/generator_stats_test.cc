// Statistical properties of the synthetic task generators: classes must be
// distinguishable (the benchmark's accuracy dynamics depend on it) and the
// natural partitions must be skewed the way the real datasets are.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "data/synthetic_har.h"
#include "data/synthetic_text.h"
#include "data/synthetic_vision.h"

namespace mhbench::data {
namespace {

// Mean feature vector per class.
std::map<int, std::vector<double>> ClassMeans(const Dataset& ds) {
  const std::size_t elems = ds.features.numel() / ds.size();
  std::map<int, std::vector<double>> sums;
  std::map<int, int> counts;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const int y = ds.labels[i];
    auto& s = sums[y];
    s.resize(elems, 0.0);
    const Scalar* row = ds.features.data().data() + i * elems;
    for (std::size_t e = 0; e < elems; ++e) s[e] += row[e];
    counts[y]++;
  }
  for (auto& [y, s] : sums) {
    for (auto& v : s) v /= counts[y];
  }
  return sums;
}

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(d);
}

TEST(VisionStatsTest, ClassMeansSeparated) {
  SyntheticVisionConfig cfg;
  cfg.train_samples = 1000;
  cfg.test_samples = 100;
  const auto tt = MakeSyntheticVision(cfg);
  const auto means = ClassMeans(tt.train);
  ASSERT_EQ(static_cast<int>(means.size()), cfg.num_classes);
  // Every pair of class means must be clearly separated relative to the
  // tanh-squashed feature scale.
  for (auto it = means.begin(); it != means.end(); ++it) {
    for (auto jt = std::next(it); jt != means.end(); ++jt) {
      EXPECT_GT(Distance(it->second, jt->second), 1.0)
          << it->first << " vs " << jt->first;
    }
  }
}

TEST(VisionStatsTest, FeaturesBoundedByTanh) {
  SyntheticVisionConfig cfg;
  cfg.train_samples = 200;
  cfg.test_samples = 50;
  const auto tt = MakeSyntheticVision(cfg);
  for (std::size_t i = 0; i < tt.train.features.numel(); ++i) {
    EXPECT_GE(tt.train.features[i], -1.0f);
    EXPECT_LE(tt.train.features[i], 1.0f);
  }
}

TEST(VisionStatsTest, TrainTestShareTemplates) {
  // Same seed -> train and test come from the same class templates, so the
  // class means of both splits must be close (learnability transfers).
  SyntheticVisionConfig cfg;
  cfg.train_samples = 1500;
  cfg.test_samples = 1500;
  const auto tt = MakeSyntheticVision(cfg);
  const auto train_means = ClassMeans(tt.train);
  const auto test_means = ClassMeans(tt.test);
  for (const auto& [cls, mean] : train_means) {
    ASSERT_TRUE(test_means.count(cls));
    // Cross-split distance of the same class must be smaller than the
    // distance to any *other* class's test mean (nearest-centroid transfer).
    const double same = Distance(mean, test_means.at(cls));
    for (const auto& [other, omean] : test_means) {
      if (other == cls) continue;
      EXPECT_LT(same, Distance(mean, omean)) << cls << " vs " << other;
    }
  }
}

TEST(TextStatsTest, ClassTokenBias) {
  SyntheticTextConfig cfg;
  cfg.train_samples = 2000;
  cfg.test_samples = 100;
  const auto tt = MakeSyntheticText(cfg);
  // Per class, the top-8 most frequent tokens should carry well over the
  // uniform share of the mass (class_token_p = 0.6).
  std::map<int, std::map<int, int>> freq;
  std::map<int, int> totals;
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const int y = tt.train.labels[i];
    const Scalar* row =
        tt.train.features.data().data() + i * static_cast<std::size_t>(cfg.seq_len);
    for (int t = 0; t < cfg.seq_len; ++t) {
      freq[y][static_cast<int>(row[t])]++;
      totals[y]++;
    }
  }
  for (const auto& [y, counts] : freq) {
    std::vector<int> sorted;
    for (const auto& [tok, c] : counts) sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    int top8 = 0;
    for (int k = 0; k < 8 && k < static_cast<int>(sorted.size()); ++k) {
      top8 += sorted[static_cast<std::size_t>(k)];
    }
    const double share = static_cast<double>(top8) / totals[y];
    EXPECT_GT(share, 0.5) << "class " << y;  // uniform would be 8/64 = .125
  }
}

TEST(TextStatsTest, UserSkewInNaturalMode) {
  SyntheticTextConfig cfg;
  cfg.train_samples = 3000;
  cfg.test_samples = 100;
  cfg.num_users = 20;
  cfg.user_skew = 0.7f;
  const auto tt = MakeSyntheticText(cfg);
  // Per user, the dominant class share should be near user_skew, far above
  // the uniform 1/num_classes.
  std::map<int, std::map<int, int>> by_user;
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    by_user[tt.train.user_ids[i]][tt.train.labels[i]]++;
  }
  double mean_share = 0;
  for (const auto& [u, counts] : by_user) {
    int total = 0, mx = 0;
    for (const auto& [c, n] : counts) {
      total += n;
      mx = std::max(mx, n);
    }
    mean_share += static_cast<double>(mx) / total;
  }
  mean_share /= static_cast<double>(by_user.size());
  EXPECT_GT(mean_share, 0.55);
}

TEST(HarStatsTest, ClassesSeparableInFrequency) {
  SyntheticHarConfig cfg;
  cfg.train_samples = 1200;
  cfg.test_samples = 100;
  const auto tt = MakeSyntheticHar(cfg);
  // Mean absolute first-difference grows with signal frequency, so class
  // ordering by that statistic should be strongly correlated with class id
  // (frequencies increase with class by construction).
  std::map<int, double> stat;
  std::map<int, int> counts;
  const std::size_t elems = tt.train.features.numel() / tt.train.size();
  const int window = cfg.window;
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const Scalar* row = tt.train.features.data().data() + i * elems;
    double d = 0;
    for (int t = 1; t < window; ++t) {
      d += std::abs(row[t] - row[t - 1]);
    }
    stat[tt.train.labels[i]] += d;
    counts[tt.train.labels[i]]++;
  }
  double prev = -1;
  int increasing = 0;
  for (int c = 0; c < cfg.num_classes; ++c) {
    const double v = stat[c] / counts[c];
    if (v > prev) ++increasing;
    prev = v;
  }
  // Allow one inversion from noise.
  EXPECT_GE(increasing, cfg.num_classes - 1);
}

TEST(HarStatsTest, UserGainVariesAcrossUsers) {
  SyntheticHarConfig cfg;
  cfg.train_samples = 2000;
  cfg.test_samples = 100;
  cfg.num_users = 10;
  const auto tt = MakeSyntheticHar(cfg);
  // Mean absolute amplitude per user should vary (per-user gain).
  std::map<int, double> amp;
  std::map<int, int> counts;
  const std::size_t elems = tt.train.features.numel() / tt.train.size();
  for (std::size_t i = 0; i < tt.train.size(); ++i) {
    const Scalar* row = tt.train.features.data().data() + i * elems;
    double a = 0;
    for (std::size_t e = 0; e < elems; ++e) a += std::abs(row[e]);
    amp[tt.train.user_ids[i]] += a / static_cast<double>(elems);
    counts[tt.train.user_ids[i]]++;
  }
  double lo = 1e30, hi = 0;
  for (const auto& [u, a] : amp) {
    const double v = a / counts[u];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi / lo, 1.15);
}

}  // namespace
}  // namespace mhbench::data
