#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/loader.h"
#include "data/partition.h"
#include "data/tasks.h"

namespace mhbench::data {
namespace {

TEST(DatasetTest, SubsetAndGather) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({4, 2}, std::vector<Scalar>{1, 1, 2, 2, 3, 3, 4, 4});
  ds.labels = {0, 1, 0, 1};
  const std::vector<int> idx = {3, 0};
  const Dataset sub = ds.Subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels[0], 1);
  EXPECT_EQ(sub.features.at({0, 0}), 4.0f);
  EXPECT_EQ(sub.features.at({1, 0}), 1.0f);
}

TEST(DatasetTest, ValidateCatchesBadLabels) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({1, 1});
  ds.labels = {5};
  EXPECT_THROW(ds.Validate(), Error);
}

TEST(DatasetTest, GatherOutOfRangeThrows) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({2, 1});
  ds.labels = {0, 1};
  const std::vector<int> idx = {2};
  EXPECT_THROW(ds.GatherFeatures(idx), Error);
}

class TaskGenTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskGenTest,
                         ::testing::Values("cifar10", "cifar100", "agnews",
                                           "stackoverflow", "harbox",
                                           "ucihar"));

TEST_P(TaskGenTest, GeneratesValidDatasets) {
  TaskConfig cfg;
  cfg.train_samples = 200;
  cfg.test_samples = 80;
  cfg.num_clients = 8;
  const Task task = MakeTask(GetParam(), cfg);
  task.train.Validate();
  task.test.Validate();
  EXPECT_EQ(task.train.size(), 200u);
  EXPECT_EQ(task.test.size(), 80u);
  EXPECT_EQ(task.name, GetParam());
  // All classes present in train data.
  std::set<int> seen(task.train.labels.begin(), task.train.labels.end());
  EXPECT_EQ(static_cast<int>(seen.size()), task.train.num_classes);
}

TEST_P(TaskGenTest, DeterministicForSameSeed) {
  TaskConfig cfg;
  cfg.train_samples = 60;
  cfg.test_samples = 30;
  const Task a = MakeTask(GetParam(), cfg);
  const Task b = MakeTask(GetParam(), cfg);
  EXPECT_TRUE(a.train.features.AllClose(b.train.features, 0.0f));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST_P(TaskGenTest, DifferentSeedsDiffer) {
  TaskConfig a_cfg, b_cfg;
  a_cfg.train_samples = b_cfg.train_samples = 60;
  a_cfg.test_samples = b_cfg.test_samples = 30;
  b_cfg.seed = 99;
  const Task a = MakeTask(GetParam(), a_cfg);
  const Task b = MakeTask(GetParam(), b_cfg);
  EXPECT_FALSE(a.train.features.AllClose(b.train.features, 1e-6f));
}

TEST(TaskGenTest, NaturalTasksCarryUserIds) {
  TaskConfig cfg;
  cfg.train_samples = 100;
  cfg.test_samples = 40;
  cfg.num_clients = 5;
  for (const char* name : {"stackoverflow", "harbox", "ucihar"}) {
    const Task task = MakeTask(name, cfg);
    EXPECT_TRUE(task.natural) << name;
    EXPECT_EQ(task.train.user_ids.size(), task.train.size()) << name;
  }
  for (const char* name : {"cifar10", "cifar100", "agnews"}) {
    const Task task = MakeTask(name, cfg);
    EXPECT_FALSE(task.natural) << name;
    EXPECT_TRUE(task.train.user_ids.empty()) << name;
  }
}

TEST(TaskGenTest, UnknownTaskThrows) {
  EXPECT_THROW(MakeTask("imagenet", {}), Error);
}

TEST(IidPartitionTest, CoversAllSamplesEvenly) {
  Rng rng(1);
  const Partition p = IidPartition(100, 7, rng);
  ValidatePartition(p, 100);
  for (const auto& shard : p) {
    EXPECT_GE(shard.size(), 14u);
    EXPECT_LE(shard.size(), 15u);
  }
}

TEST(IidPartitionTest, MoreClientsThanSamplesThrows) {
  Rng rng(1);
  EXPECT_THROW(IidPartition(3, 5, rng), Error);
}

TEST(DirichletPartitionTest, ValidAndNonEmpty) {
  Rng rng(2);
  std::vector<int> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 10);
  }
  const Partition p = DirichletPartition(labels, 10, 12, 0.5, rng);
  ValidatePartition(p, 300);
  for (const auto& shard : p) EXPECT_FALSE(shard.empty());
}

TEST(DirichletPartitionTest, SmallAlphaMoreSkewedThanLarge) {
  Rng rng(3);
  std::vector<int> labels(1000);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 5);
  }
  auto skew = [&](double alpha) {
    Rng r(7);
    const Partition p = DirichletPartition(labels, 5, 10, alpha, r);
    // Mean over clients of (max class share within the client's shard).
    double total = 0;
    for (const auto& shard : p) {
      std::vector<int> counts(5, 0);
      for (int i : shard) ++counts[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)])];
      const int mx = *std::max_element(counts.begin(), counts.end());
      total += static_cast<double>(mx) / static_cast<double>(shard.size());
    }
    return total / static_cast<double>(p.size());
  };
  EXPECT_GT(skew(0.1), skew(100.0) + 0.1);
}

TEST(NaturalPartitionTest, GroupsByUser) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({5, 1});
  ds.labels = {0, 1, 0, 1, 0};
  ds.user_ids = {1, 0, 1, 2, 1};
  const Partition p = NaturalPartition(ds, 3);
  ASSERT_EQ(p.size(), 3u);
  ValidatePartition(p, 5);
  // User 1 owns samples 0, 2, 4.
  bool found = false;
  for (const auto& shard : p) {
    if (shard.size() == 3) {
      EXPECT_EQ(shard, (std::vector<int>{0, 2, 4}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NaturalPartitionTest, RequiresUserIds) {
  Dataset ds;
  ds.num_classes = 1;
  ds.features = Tensor({1, 1});
  ds.labels = {0};
  EXPECT_THROW(NaturalPartition(ds, 2), Error);
}

TEST(BatchIteratorTest, CoversEpochWithPartialTail) {
  Dataset ds;
  ds.num_classes = 2;
  ds.features = Tensor({7, 1});
  for (int i = 0; i < 7; ++i) ds.features[static_cast<std::size_t>(i)] = static_cast<Scalar>(i);
  ds.labels = {0, 1, 0, 1, 0, 1, 0};
  Rng rng(1);
  BatchIterator it(ds, 3, rng);
  EXPECT_EQ(it.num_batches(), 3);
  Tensor x;
  std::vector<int> y;
  std::multiset<float> seen;
  int batches = 0;
  while (it.Next(x, y)) {
    ++batches;
    for (std::size_t i = 0; i < x.numel(); ++i) seen.insert(x[i]);
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(seen.size(), 7u);  // every sample exactly once
}

TEST(BatchIteratorTest, NoShuffleKeepsOrder) {
  Dataset ds;
  ds.num_classes = 1;
  ds.features = Tensor({3, 1}, std::vector<Scalar>{10, 20, 30});
  ds.labels = {0, 0, 0};
  Rng rng(1);
  BatchIterator it(ds, 2, rng, /*shuffle=*/false);
  Tensor x;
  std::vector<int> y;
  ASSERT_TRUE(it.Next(x, y));
  EXPECT_EQ(x[0], 10.0f);
  EXPECT_EQ(x[1], 20.0f);
  ASSERT_TRUE(it.Next(x, y));
  EXPECT_EQ(x[0], 30.0f);
  EXPECT_FALSE(it.Next(x, y));
}

}  // namespace
}  // namespace mhbench::data
