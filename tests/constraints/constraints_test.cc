#include <algorithm>

#include <gtest/gtest.h>

#include "core/error.h"

#include "constraints/combined.h"
#include "constraints/communication_limited.h"
#include "constraints/computation_limited.h"
#include "constraints/memory_limited.h"
#include "device/cost_model.h"

namespace mhbench::constraints {
namespace {

device::Fleet TestFleet(int n = 40, std::uint64_t seed = 3) {
  device::FleetConfig cfg;
  cfg.num_clients = n;
  cfg.seed = seed;
  return device::SampleFleet(cfg);
}

TEST(ComputationLimitedTest, EveryClientMeetsDeadlineOrRunsSmallest) {
  const device::Fleet fleet = TestFleet();
  const auto built =
      BuildComputationLimited("sheterofl", "cifar100", fleet);
  ASSERT_EQ(built.assignments.size(), fleet.size());
  EXPECT_GT(built.compute_deadline_s, 0.0);
  int at_smallest = 0;
  for (const auto& a : built.assignments) {
    if (a.capacity <= 0.25 + 1e-9) {
      ++at_smallest;
    } else {
      EXPECT_LE(a.system.compute_time_s, built.compute_deadline_s + 1e-9);
    }
  }
  // Some heterogeneity must emerge from an IMA-style fleet.
  std::vector<double> caps;
  for (const auto& a : built.assignments) caps.push_back(a.capacity);
  std::sort(caps.begin(), caps.end());
  EXPECT_LT(caps.front(), caps.back());
}

TEST(ComputationLimitedTest, FasterDevicesGetLargerModels) {
  const device::Fleet fleet = TestFleet();
  const auto built =
      BuildComputationLimited("sheterofl", "cifar100", fleet);
  // Capacity must be monotone in device speed.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = 0; j < fleet.size(); ++j) {
      if (fleet[i].gflops > fleet[j].gflops) {
        EXPECT_GE(built.assignments[i].capacity + 1e-9,
                  built.assignments[j].capacity);
      }
    }
  }
}

TEST(CommunicationLimitedTest, CommWithinBudget) {
  const device::Fleet fleet = TestFleet();
  ConstraintOptions opts;
  opts.comm_budget_s = 200.0;
  const auto built =
      BuildCommunicationLimited("fedrolex", "cifar100", fleet, opts);
  for (const auto& a : built.assignments) {
    if (a.capacity > 0.25 + 1e-9) {
      EXPECT_LE(a.system.comm_time_s, 200.0 + 1e-9);
    }
  }
}

TEST(CommunicationLimitedTest, TighterBudgetSmallerModels) {
  const device::Fleet fleet = TestFleet();
  ConstraintOptions loose, tight;
  loose.comm_budget_s = 500.0;
  tight.comm_budget_s = 30.0;
  const auto big =
      BuildCommunicationLimited("sheterofl", "cifar100", fleet, loose);
  const auto small =
      BuildCommunicationLimited("sheterofl", "cifar100", fleet, tight);
  double big_mean = 0, small_mean = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    big_mean += big.assignments[i].capacity;
    small_mean += small.assignments[i].capacity;
  }
  EXPECT_GT(big_mean, small_mean);
}

TEST(MemoryLimitedTest, FitsTier) {
  const device::Fleet fleet = TestFleet();
  const auto built = BuildMemoryLimited("depthfl", "cifar100", fleet);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& a = built.assignments[i];
    if (a.capacity > 0.25 + 1e-9) {
      EXPECT_LE(a.system.memory_mb, fleet[i].memory_mb + 1e-6);
    }
  }
}

TEST(MemoryLimitedTest, FedepthHostsLargerModelsThanDepthfl) {
  // The paper's central memory-case finding: FeDepth's small footprint
  // admits larger models than DepthFL under the same tiers.
  const device::Fleet fleet = TestFleet(200);
  const auto fedepth = BuildMemoryLimited("fedepth", "cifar100", fleet);
  const auto depthfl = BuildMemoryLimited("depthfl", "cifar100", fleet);
  double cap_fedepth = 0, cap_depthfl = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    cap_fedepth += fedepth.assignments[i].capacity;
    cap_depthfl += depthfl.assignments[i].capacity;
  }
  EXPECT_GT(cap_fedepth, cap_depthfl);
}

TEST(CombinedTest, CombinationIsMoreRestrictive) {
  const device::Fleet fleet = TestFleet(100);
  const auto comm =
      BuildCommunicationLimited("sheterofl", "cifar100", fleet);
  const auto mem = BuildMemoryLimited("sheterofl", "cifar100", fleet);
  const auto both = BuildCommMemLimited("sheterofl", "cifar100", fleet);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_LE(both.assignments[i].capacity,
              std::min(comm.assignments[i].capacity,
                       mem.assignments[i].capacity) +
                  1e-9);
  }
}

TEST(CombinedTest, TripleAtLeastAsRestrictiveAsDouble) {
  const device::Fleet fleet = TestFleet(100);
  const auto two = BuildCommMemLimited("fedrolex", "cifar100", fleet);
  const auto three = BuildCompCommMemLimited("fedrolex", "cifar100", fleet);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_LE(three.assignments[i].capacity,
              two.assignments[i].capacity + 1e-9);
  }
}

TEST(TopologyConstraintTest, ArchIndexVariesWithMemory) {
  const device::Fleet fleet = TestFleet(200);
  const auto built = BuildMemoryLimited("fedet", "cifar100", fleet);
  int min_arch = 99, max_arch = -1;
  for (const auto& a : built.assignments) {
    min_arch = std::min(min_arch, a.arch_index);
    max_arch = std::max(max_arch, a.arch_index);
    EXPECT_DOUBLE_EQ(a.capacity, 1.0);  // topology scales arch, not ratio
  }
  EXPECT_LT(min_arch, max_arch);
}

TEST(ConstraintTest, NoFlagsThrows) {
  const device::Fleet fleet = TestFleet(5);
  ConstraintFlags none;
  EXPECT_THROW(BuildConstrained("sheterofl", "cifar100", fleet, none), Error);
}

TEST(ConstraintTest, EmptyFleetThrows) {
  device::Fleet fleet;
  ConstraintFlags flags;
  flags.memory = true;
  EXPECT_THROW(BuildConstrained("sheterofl", "cifar100", fleet, flags),
               Error);
}

TEST(ConstraintTest, AllAlgorithmsAllTasksBuild) {
  const device::Fleet fleet = TestFleet(12);
  for (const char* task : {"cifar10", "cifar100", "agnews", "stackoverflow",
                           "harbox", "ucihar"}) {
    for (const char* alg :
         {"fedavg", "fjord", "sheterofl", "fedrolex", "depthfl",
          "inclusivefl", "fedepth", "fedproto", "fedet"}) {
      const auto built = BuildComputationLimited(alg, task, fleet);
      EXPECT_EQ(built.assignments.size(), fleet.size()) << task << alg;
    }
  }
}

}  // namespace
}  // namespace mhbench::constraints
