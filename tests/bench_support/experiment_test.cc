#include "bench_support/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/error.h"

namespace mhbench::bench_support {
namespace {

BenchPreset TinyPreset() {
  BenchPreset p = BenchPreset::FromEnv();
  p.rounds = 4;
  p.clients = 6;
  p.train_samples = 180;
  p.test_samples = 90;
  p.eval_every = 2;
  p.eval_max_samples = 90;
  p.stability_max_samples = 30;
  return p;
}

TEST(ExperimentTest, RunOneProducesBundle) {
  SuiteOptions options;
  options.constraint = "computation";
  options.task = "cifar10";
  options.preset = TinyPreset();
  const auto bundle = RunOne("sheterofl", options);
  EXPECT_EQ(bundle.algorithm, "sheterofl");
  EXPECT_EQ(bundle.task, "cifar10");
  EXPECT_EQ(bundle.constraint, "computation");
  EXPECT_GE(bundle.global_accuracy, 0.0);
  EXPECT_LE(bundle.global_accuracy, 1.0);
  EXPECT_FALSE(bundle.curve_accuracy.empty());
  EXPECT_EQ(bundle.curve_accuracy.size(), bundle.curve_time_s.size());
  EXPECT_GT(bundle.total_sim_time_s, 0.0);
}

TEST(ExperimentTest, RunSuiteFillsEffectivenessAndTarget) {
  SuiteOptions options;
  options.constraint = "memory";
  options.task = "cifar100";
  options.preset = TinyPreset();
  const auto bundles = RunSuite({"sheterofl", "depthfl"}, options);
  ASSERT_EQ(bundles.size(), 3u);  // baseline + 2
  EXPECT_EQ(bundles[0].algorithm, "fedavg-small");
  EXPECT_DOUBLE_EQ(bundles[0].effectiveness, 0.0);
  const double target = bundles[0].target_accuracy;
  EXPECT_GT(target, 0.0);
  for (const auto& b : bundles) {
    EXPECT_DOUBLE_EQ(b.target_accuracy, target);
    EXPECT_NEAR(b.effectiveness,
                b.global_accuracy - bundles[0].global_accuracy, 1e-12);
  }
}

TEST(ExperimentTest, NonIidOptionRuns) {
  SuiteOptions options;
  options.constraint = "computation";
  options.task = "cifar10";
  options.preset = TinyPreset();
  options.dirichlet_alpha = 0.5;
  const auto bundle = RunOne("fedrolex", options);
  EXPECT_GE(bundle.global_accuracy, 0.0);
}

TEST(ExperimentTest, AllConstraintNamesAccepted) {
  SuiteOptions options;
  options.task = "cifar10";
  options.preset = TinyPreset();
  options.preset.rounds = 2;
  for (const char* c : {"none", "computation", "communication", "memory",
                        "comm+mem", "comp+comm+mem"}) {
    options.constraint = c;
    EXPECT_GE(RunOne("sheterofl", options).global_accuracy, 0.0) << c;
  }
  options.constraint = "gravity";
  EXPECT_THROW(RunOne("sheterofl", options), Error);
}

TEST(ExperimentTest, DeterministicAcrossCalls) {
  SuiteOptions options;
  options.constraint = "computation";
  options.task = "ucihar";
  options.preset = TinyPreset();
  const auto a = RunOne("depthfl", options);
  const auto b = RunOne("depthfl", options);
  EXPECT_DOUBLE_EQ(a.global_accuracy, b.global_accuracy);
  EXPECT_DOUBLE_EQ(a.stability_variance, b.stability_variance);
}

TEST(PresetTest, EnvOverrides) {
  setenv("MHB_ROUNDS", "99", 1);
  setenv("MHB_CLIENTS", "33", 1);
  const BenchPreset p = BenchPreset::FromEnv();
  EXPECT_EQ(p.rounds, 99);
  EXPECT_EQ(p.clients, 33);
  unsetenv("MHB_ROUNDS");
  unsetenv("MHB_CLIENTS");
  const BenchPreset q = BenchPreset::FromEnv();
  EXPECT_EQ(q.rounds, 20);
  EXPECT_EQ(q.clients, 10);
}

}  // namespace
}  // namespace mhbench::bench_support
