#include "device/cost_model.h"

#include <gtest/gtest.h>

#include "core/error.h"

#include "device/calibration.h"
#include "device/device_profile.h"

namespace mhbench::device {
namespace {

TEST(CostModelTest, ReproducesTableOneTimes) {
  // Table I is the calibration anchor: Nano times must match exactly, Orin
  // times within a few percent (a single per-method factor is fitted).
  CostModel cm(PaperDesc("resnet101"));
  const DeviceProfile nano = JetsonNano();
  const DeviceProfile orin = JetsonOrinNx();

  struct Row {
    const char* m;
    double nano_s, orin_s, mem;
  };
  const Row rows[] = {
      {"sheterofl", 430.24, 212.72, 593},
      {"depthfl", 515.93, 254.65, 1220},
      {"fedrolex", 465.17, 233.56, 780},
      {"fedepth", 450.64, 222.35, 631},
  };
  for (const auto& r : rows) {
    const RoundCost cn = cm.Cost(r.m, 0.5, nano);
    const RoundCost co = cm.Cost(r.m, 0.5, orin);
    EXPECT_NEAR(cn.train_time_s, r.nano_s, 0.5) << r.m;
    EXPECT_NEAR(co.train_time_s, r.orin_s, r.orin_s * 0.03) << r.m;
    EXPECT_NEAR(cn.memory_mb, r.mem, 1.0) << r.m;
  }
}

TEST(CostModelTest, ResNet101FullSizeRealistic) {
  // Real ResNet-101 has ~44.5M parameters (ImageNet head); our CIFAR-100
  // variant should land in the same ballpark.
  const ModelStats s =
      ComputeStats(PaperDesc("resnet101"), ScaleAxis::kWidth, 1.0);
  EXPECT_GT(s.params, 35e6);
  EXPECT_LT(s.params, 50e6);
}

TEST(CostModelTest, WidthScalingQuadratic) {
  // Halving width roughly quarters parameters for conv nets.
  const PaperModelDesc d = PaperDesc("resnet101");
  const double full = ComputeStats(d, ScaleAxis::kWidth, 1.0).params;
  const double half = ComputeStats(d, ScaleAxis::kWidth, 0.5).params;
  EXPECT_NEAR(half / full, 0.25, 0.05);
}

TEST(CostModelTest, DepthScalingMonotone) {
  const PaperModelDesc d = PaperDesc("resnet101");
  double prev = 0;
  for (double r : {0.25, 0.5, 0.75, 1.0}) {
    const double p = ComputeStats(d, ScaleAxis::kDepth, r).params;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(CostModelTest, ResNetFamilyOrdering) {
  double prev = 0;
  for (const char* name : {"resnet18", "resnet34", "resnet50", "resnet101"}) {
    const double p =
        ComputeStats(PaperDesc(name), ScaleAxis::kWidth, 1.0).params;
    EXPECT_GT(p, prev) << name;
    prev = p;
  }
}

TEST(CostModelTest, AlbertFamilyParamsRealistic) {
  // ALBERT-base ~12M, large ~18M, xxlarge ~235M (paper-reported sizes).
  const double base =
      ComputeStats(PaperDesc("albert-base"), ScaleAxis::kWidth, 1.0).params;
  const double large =
      ComputeStats(PaperDesc("albert-large"), ScaleAxis::kWidth, 1.0).params;
  const double xxl =
      ComputeStats(PaperDesc("albert-xxlarge"), ScaleAxis::kWidth, 1.0)
          .params;
  EXPECT_NEAR(base / 1e6, 32, 8);  // embedding unfactorized here
  EXPECT_GT(large, base);
  EXPECT_GT(xxl, 4 * large);
}

TEST(CostModelTest, AlbertDepthScalingKeepsParams) {
  // Cross-layer sharing: fewer executed layers shrink FLOPs, not params.
  const PaperModelDesc d = PaperDesc("albert-base");
  const ModelStats full = ComputeStats(d, ScaleAxis::kDepth, 1.0);
  const ModelStats half = ComputeStats(d, ScaleAxis::kDepth, 0.5);
  EXPECT_DOUBLE_EQ(full.params, half.params);
  EXPECT_LT(half.flops_fwd, full.flops_fwd);
}

TEST(CostModelTest, FasterDeviceFasterTraining) {
  CostModel cm(PaperDesc("resnet50"));
  const double nano = cm.Cost("sheterofl", 1.0, JetsonNano()).train_time_s;
  const double orin = cm.Cost("sheterofl", 1.0, JetsonOrinNx()).train_time_s;
  const double tx2 = cm.Cost("sheterofl", 1.0, JetsonTx2Nx()).train_time_s;
  const double pi = cm.Cost("sheterofl", 1.0, RaspberryPi4()).train_time_s;
  EXPECT_LT(orin, tx2);
  EXPECT_LT(tx2, nano);
  EXPECT_LT(nano, pi);
}

TEST(CostModelTest, CommScalesWithParams) {
  CostModel cm(PaperDesc("resnet101"));
  const DeviceProfile dev = JetsonNano();
  const RoundCost big = cm.Cost("sheterofl", 1.0, dev);
  const RoundCost small = cm.Cost("sheterofl", 0.25, dev);
  EXPECT_GT(big.comm_mb, small.comm_mb);
  EXPECT_NEAR(big.comm_mb, 2.0 * big.params_m * 4.0, 1e-6);
  EXPECT_GT(big.comm_time_s, small.comm_time_s);
}

TEST(CostModelTest, DepthflMemoryExceedsSheterofl) {
  // The paper's key memory asymmetry must hold at every ratio.
  CostModel cm(PaperDesc("resnet101"));
  const DeviceProfile dev = JetsonOrinNx();
  for (double r : {0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GT(cm.Cost("depthfl", r, dev).memory_mb,
              cm.Cost("fedepth", r, dev).memory_mb)
        << r;
  }
}

TEST(CostModelTest, AxisMapping) {
  EXPECT_EQ(AxisOf("sheterofl"), ScaleAxis::kWidth);
  EXPECT_EQ(AxisOf("fjord"), ScaleAxis::kWidth);
  EXPECT_EQ(AxisOf("fedrolex"), ScaleAxis::kWidth);
  EXPECT_EQ(AxisOf("fedavg"), ScaleAxis::kWidth);
  EXPECT_EQ(AxisOf("depthfl"), ScaleAxis::kDepth);
  EXPECT_EQ(AxisOf("inclusivefl"), ScaleAxis::kDepth);
  EXPECT_EQ(AxisOf("fedepth"), ScaleAxis::kDepth);
  EXPECT_EQ(AxisOf("fedproto"), ScaleAxis::kFull);
  EXPECT_EQ(AxisOf("fedet"), ScaleAxis::kFull);
  EXPECT_THROW(AxisOf("nope"), Error);
}

TEST(CostModelTest, UnknownModelThrows) {
  EXPECT_THROW(PaperDesc("vgg16"), Error);
  EXPECT_THROW(PaperDescsForTask("imagenet"), Error);
}

TEST(CostModelTest, AllTaskDescsResolve) {
  for (const char* task : {"cifar10", "cifar100", "agnews", "stackoverflow",
                           "harbox", "ucihar"}) {
    const PaperTaskDescs descs = PaperDescsForTask(task);
    EXPECT_FALSE(descs.topology.empty()) << task;
    const ModelStats s =
        ComputeStats(descs.primary, ScaleAxis::kWidth, 1.0);
    EXPECT_GT(s.params, 0) << task;
    EXPECT_GT(s.flops_fwd, 0) << task;
  }
}

TEST(CalibrationTest, InvalidRatioThrows) {
  const PaperModelDesc d = PaperDesc("resnet18");
  EXPECT_THROW(ComputeStats(d, ScaleAxis::kWidth, 0.0), Error);
  EXPECT_THROW(ComputeStats(d, ScaleAxis::kWidth, 1.5), Error);
}

TEST(CalibrationTest, DeviceGflopsOrdering) {
  EXPECT_GT(DeviceGflops("jetson-orin-nx"), DeviceGflops("jetson-tx2-nx"));
  EXPECT_GT(DeviceGflops("jetson-tx2-nx"), DeviceGflops("jetson-nano"));
  EXPECT_GT(DeviceGflops("jetson-nano"), DeviceGflops("raspberry-pi-4b"));
  EXPECT_THROW(DeviceGflops("tpu"), Error);
}

}  // namespace
}  // namespace mhbench::device
