#include <gtest/gtest.h>

#include "core/error.h"

#include "algorithms/registry.h"
#include "device/device_profile.h"
#include "device/ima_fleet.h"
#include "device/model_pool.h"

namespace mhbench::device {
namespace {

TEST(FleetTest, DeterministicForSeed) {
  FleetConfig cfg;
  cfg.num_clients = 50;
  const Fleet a = SampleFleet(cfg);
  const Fleet b = SampleFleet(cfg);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].gflops, b[i].gflops);
    EXPECT_DOUBLE_EQ(a[i].bandwidth_mbps, b[i].bandwidth_mbps);
    EXPECT_DOUBLE_EQ(a[i].memory_mb, b[i].memory_mb);
  }
}

TEST(FleetTest, MemoryTierProportionsApproximate) {
  FleetConfig cfg;
  cfg.num_clients = 4000;
  cfg.p16gb = 0.2;
  cfg.p4gb = 0.5;
  const Fleet fleet = SampleFleet(cfg);
  int n16 = 0, n4 = 0, ncpu = 0;
  for (const auto& d : fleet) {
    if (d.memory_mb > 4000) {
      ++n16;
    } else if (d.has_gpu) {
      ++n4;
    } else {
      ++ncpu;
    }
  }
  EXPECT_NEAR(n16 / 4000.0, 0.2, 0.03);
  EXPECT_NEAR(n4 / 4000.0, 0.5, 0.03);
  EXPECT_NEAR(ncpu / 4000.0, 0.3, 0.03);
}

TEST(FleetTest, ComputeSpreadIsWide) {
  FleetConfig cfg;
  cfg.num_clients = 2000;
  const Fleet fleet = SampleFleet(cfg);
  double lo = 1e30, hi = 0;
  for (const auto& d : fleet) {
    lo = std::min(lo, d.gflops);
    hi = std::max(hi, d.gflops);
  }
  // IMA-style fleets span at least an order of magnitude.
  EXPECT_GT(hi / lo, 10.0);
}

TEST(FleetTest, CpuOnlyDevicesSlower) {
  FleetConfig cfg;
  cfg.num_clients = 2000;
  const Fleet fleet = SampleFleet(cfg);
  double gpu_sum = 0, cpu_sum = 0;
  int gpu_n = 0, cpu_n = 0;
  for (const auto& d : fleet) {
    if (d.has_gpu) {
      gpu_sum += d.gflops;
      ++gpu_n;
    } else {
      cpu_sum += d.gflops;
      ++cpu_n;
    }
  }
  ASSERT_GT(gpu_n, 0);
  ASSERT_GT(cpu_n, 0);
  EXPECT_GT(gpu_sum / gpu_n, 3.0 * (cpu_sum / cpu_n));
}

TEST(FleetTest, InvalidConfigThrows) {
  FleetConfig cfg;
  cfg.num_clients = 0;
  EXPECT_THROW(SampleFleet(cfg), Error);
  cfg.num_clients = 10;
  cfg.p16gb = 0.8;
  cfg.p4gb = 0.5;
  EXPECT_THROW(SampleFleet(cfg), Error);
}

TEST(ModelPoolTest, WidthPoolHasLadderEntries) {
  const auto descs = PaperDescsForTask("cifar100");
  const ModelPool pool = ModelPool::ForAlgorithm(
      "sheterofl", descs, algorithms::RatioLadder(), JetsonOrinNx());
  ASSERT_EQ(pool.entries().size(), 4u);
  // Ascending by params.
  for (std::size_t i = 1; i < pool.entries().size(); ++i) {
    EXPECT_LT(pool.entries()[i - 1].cost.params_m,
              pool.entries()[i].cost.params_m);
  }
}

TEST(ModelPoolTest, TopologyPoolHasFamilyEntries) {
  const auto descs = PaperDescsForTask("cifar100");
  const ModelPool pool = ModelPool::ForAlgorithm(
      "fedet", descs, algorithms::RatioLadder(), JetsonOrinNx());
  EXPECT_EQ(pool.entries().size(), 4u);  // resnet18/34/50/101
  EXPECT_EQ(pool.entries().front().model, "resnet18");
  EXPECT_EQ(pool.entries().back().model, "resnet101");
}

TEST(ModelPoolTest, LargestWhereRespectsPredicate) {
  const auto descs = PaperDescsForTask("cifar100");
  const ModelPool pool = ModelPool::ForAlgorithm(
      "sheterofl", descs, algorithms::RatioLadder(), JetsonOrinNx());
  const double cutoff = pool.entries()[2].cost.memory_mb + 1.0;
  const auto pick = pool.LargestWhere(
      [&](const RoundCost& c) { return c.memory_mb <= cutoff; });
  ASSERT_TRUE(pick.has_value());
  EXPECT_DOUBLE_EQ(pick->ratio, pool.entries()[2].ratio);
  // Impossible predicate -> nullopt; Smallest() as fallback.
  EXPECT_FALSE(
      pool.LargestWhere([](const RoundCost&) { return false; }).has_value());
  EXPECT_DOUBLE_EQ(pool.Smallest().ratio, 0.25);
}

}  // namespace
}  // namespace mhbench::device
