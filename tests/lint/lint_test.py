#!/usr/bin/env python3
"""Fixture tests for tools/mhb_lint.py.

Each fixture in tests/lint/fixtures/ is a tiny C++ file seeded with known
violations.  Expectations live inside the fixtures as comments:

    code;  // expect: <rule-id>          violation on this line
    // expect-at:<line>: <rule-id>       violation on a specific line

The driver runs the real linter (same entry point check.sh --lint uses) on
every fixture and asserts, in both directions, the exact set of
(line, rule-id) findings plus the exit code: 1 when violations are
expected, 0 for the clean/waived fixtures.  Finally the whole repository
tree must lint clean.

Exit code: 0 on success, 1 on any mismatch.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "mhb_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

EXPECT_INLINE = re.compile(r"//\s*expect:\s*([A-Za-z0-9_-]+)")
EXPECT_AT = re.compile(r"//\s*expect-at:(\d+):\s*([A-Za-z0-9_-]+)")
OUTPUT_LINE = re.compile(r"^(.*):(\d+): ([A-Za-z0-9_-]+): ")


def expected_findings(path):
    expected = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for m in EXPECT_INLINE.finditer(line):
                expected.add((lineno, m.group(1)))
            for m in EXPECT_AT.finditer(line):
                expected.add((int(m.group(1)), m.group(2)))
    return expected


def run_linter(path):
    proc = subprocess.run(
        [sys.executable, LINTER, path],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    findings = set()
    for line in proc.stdout.splitlines():
        m = OUTPUT_LINE.match(line)
        if m:
            findings.add((int(m.group(2)), m.group(3)))
    return proc.returncode, findings, proc.stdout + proc.stderr


def main():
    fixtures = sorted(
        f for f in os.listdir(FIXTURES) if f.endswith((".cc", ".h"))
    )
    if not fixtures:
        print("lint_test: no fixtures found", file=sys.stderr)
        return 1

    failures = []
    for name in fixtures:
        path = os.path.join(FIXTURES, name)
        expected = expected_findings(path)
        want_exit = 1 if expected else 0
        got_exit, got, output = run_linter(path)
        if got != expected or got_exit != want_exit:
            failures.append(name)
            print(f"FAIL {name}")
            if got_exit != want_exit:
                print(f"  exit code: want {want_exit}, got {got_exit}")
            for line, rule in sorted(expected - got):
                print(f"  missing: line {line}: {rule}")
            for line, rule in sorted(got - expected):
                print(f"  unexpected: line {line}: {rule}")
            if output.strip():
                print("  linter output:")
                for line in output.strip().splitlines():
                    print(f"    {line}")
        else:
            print(f"ok   {name} ({len(expected)} expected finding(s))")

    # --prune reports the dead half of a used multi-rule allow without
    # affecting the exit code; the prune line's 'prune:' prefix keeps it
    # out of the finding parser above.
    prune_fixture = os.path.join(FIXTURES, "prune_partial.cc")
    proc = subprocess.run(
        [sys.executable, LINTER, "--prune", prune_fixture],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    prune_ok = (
        proc.returncode == 0
        and "allow(no-time-call) suppresses nothing" in proc.stdout
        and "allow(no-rand)" not in proc.stdout
        and not OUTPUT_LINE.match(proc.stdout)
    )
    if not prune_ok:
        failures.append("<--prune>")
        print("FAIL <--prune> (want exit 0 + a no-time-call prune line)")
        print(f"  exit code: {proc.returncode}")
        for line in (proc.stdout + proc.stderr).strip().splitlines():
            print(f"    {line}")
    else:
        print("ok   <--prune> (dead allow rule reported, exit 0)")

    # The repository itself must be clean — the fixtures prove the rules
    # fire, this proves the tree honors them.
    proc = subprocess.run(
        [sys.executable, LINTER], capture_output=True, text=True, cwd=REPO
    )
    if proc.returncode != 0:
        failures.append("<repository tree>")
        print("FAIL <repository tree> (expected clean)")
        for line in (proc.stdout + proc.stderr).strip().splitlines():
            print(f"    {line}")
    else:
        print("ok   <repository tree> (clean)")

    if failures:
        print(f"lint_test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"lint_test: {len(fixtures)} fixtures + tree scan passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
