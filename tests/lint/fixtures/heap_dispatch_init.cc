// mhb-lint: path(src/tensor/gemm_kernels_fixture.cc)
// Fixture: the per-ISA kernel TUs (gemm_kernels_*.cc) fall under the same
// no-heap-in-hotpath glob as the driver TU, and one-time cold-path work
// (dispatch-table initialization, feature probing) is waived explicitly —
// never silently.  Must exit 0: every violation here carries an allow.
#include <cstdlib>
#include <vector>

struct KernelEntry {
  const char* name;
  void (*fn)();
};

std::vector<KernelEntry>* BuildDispatchTable() {
  // One-time startup registration, not per-call work.
  // mhb-lint: allow(no-heap-in-hotpath) -- cold-path dispatch-table init, runs once at startup
  auto* table = new std::vector<KernelEntry>();
  // mhb-lint: allow(no-heap-in-hotpath) -- cold-path dispatch-table init, runs once at startup
  table->push_back({"scalar", nullptr});
  return table;
}

// Per-call code in the same TU stays subject to the rule (see
// heap_hotpath.cc for the firing cases).
float Dot(const float* a, const float* b, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}
