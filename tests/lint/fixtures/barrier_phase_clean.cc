// mhb-lint: path(src/fl/fixture_barrier_phase_clean.cc)
// The annotated-phase convention used correctly: registration and barrier
// merges under 'serial', per-thread sink calls under 'parallel'.
#include "obs/registry.h"

namespace mhbench {

// mhb-obs-phase: serial — registration happens before dispatch.
void Register(obs::Registry* reg) {
  reg->Counter("bytes_up");
  reg->AddNamed("agg_updates", 1);
}

// mhb-obs-phase: parallel — per-thread sinks only.
void Worker(obs::Registry* reg, std::size_t id) {
  reg->Add(id, 1);
  reg->Observe(id, 2);
}

// mhb-obs-phase: serial — the round barrier.
void Barrier(obs::Registry* reg) {
  reg->EndRound("algo", 0);
  reg->FlushThreadSinks();
}

}  // namespace mhbench
