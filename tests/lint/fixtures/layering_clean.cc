// mhb-lint: path(src/fl/fixture_layering_clean.cc)
// Every quoted include points strictly down the layer order, except one
// deliberate, justified up-edge carried by an allow.
#include "core/rng.h"
#include "tensor/tensor.h"
#include "obs/registry.h"
#include "nn/net.h"
#include "algorithms/algorithm.h"  // mhb-lint: allow(layering) -- fixture: deliberate documented up-edge

int FlHelper() { return 1; }
