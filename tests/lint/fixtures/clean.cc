// mhb-lint: path(src/fl/fixture_clean.cc)
// Fixture: idiomatic mhbench code — seeded RNG, sorted iteration, monotonic
// clock, logging-free — must produce zero findings.
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t Next() { return state = state * 6364136223846793005ull + 1ull; }
};

double AggregateSorted(const std::map<std::string, double>& weights) {
  double s = 0.0;
  for (const auto& kv : weights) s += kv.second;
  return s;
}

// An unordered map used as a pure lookup table is fine.
double Lookup(const std::unordered_map<int, double>& table, int key) {
  auto it = table.find(key);
  return it == table.end() ? 0.0 : it->second;
}

std::int64_t ElapsedNs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
