// mhb-lint: path(src/models/fixture_random_device.cc)
// Fixture: non-reproducible entropy sources are banned everywhere in src/.
#include <random>

unsigned Seed() {
  std::random_device rd;  // expect: no-random-device
  return rd();
}

unsigned SeedBare() {
  using namespace std;
  random_device rd;  // expect: no-random-device
  return rd();
}
