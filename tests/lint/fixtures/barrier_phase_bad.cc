// mhb-lint: path(src/fl/fixture_barrier_phase.cc)
// Registry mutations outside a declared phase, serial-only calls under a
// 'parallel' annotation, a 'serial' claim inside a pool lambda, and an
// unknown phase name.
#include "core/thread_pool.h"
#include "obs/registry.h"

namespace mhbench {

void Unannotated(obs::Registry* reg) {
  reg->AddNamed("x", 1);  // expect: barrier-phase-writes
}

// mhb-obs-phase: parallel
void WrongPhase(obs::Registry* reg, std::size_t id) {
  reg->Add(id, 1);           // legal: per-thread sink call
  reg->EndRound("algo", 0);  // expect: barrier-phase-writes
}

// mhb-obs-phase: serial
void LyingAnnotation(core::ThreadPool* pool, obs::Registry* reg,
                     std::size_t id) {
  core::ParallelFor(pool, 4, [&](std::size_t i) {
    reg->Add(id, static_cast<std::int64_t>(i));  // expect: barrier-phase-writes
  });
}

// mhb-obs-phase: later   // expect: barrier-phase-writes
void Tail() {}

}  // namespace mhbench
