// mhb-lint: path(src/fl/fixture_allow_bad.cc)
// Fixture: the escape hatch policing itself.  A justification-free allow
// does not waive (so the violation also fires), a stale allow is an error,
// and an allow naming a nonexistent rule is an error.
#include <cstdlib>

int Bad() {
  return std::rand();  // mhb-lint: allow(no-rand)
}
// expect-at:8: allow-needs-justification
// expect-at:8: no-rand

int Stale() {
  // mhb-lint: allow(no-rand) -- nothing below actually violates
  return 4;
}
// expect-at:14: allow-unused

int Unknown() {
  // mhb-lint: allow(no-such-rule) -- typo in the rule id
  return 4;
}
// expect-at:20: allow-unknown-rule
// expect-at:20: allow-unused
