// mhb-lint: path(src/fl/fixture_allowed.cc)
// Fixture: deliberate violations waived through the escape hatch, both
// trailing and line-above style.  Must exit 0.
#include <cstdlib>
#include <unordered_map>

int DrawWaived() {
  return std::rand();  // mhb-lint: allow(no-rand) -- fixture exercising the trailing waiver
}

double SumWaived(const std::unordered_map<int, double>& m) {
  double s = 0.0;
  // mhb-lint: allow(no-unordered-iteration) -- order-independent sum, fixture for line-above waiver
  for (const auto& kv : m) s += kv.second;
  return s;
}
