// mhb-lint: path(src/fl/fixture_parallel_write.cc)
// Shared-state writes inside pool lambdas: every form the rule catches —
// compound assignment, plain assignment, increment, mutating member call,
// and a Submit-side write.
#include "core/thread_pool.h"

namespace mhbench {

void Dispatch(core::ThreadPool* pool, std::vector<double>& out,
              std::vector<int>& log) {
  double total = 0.0;
  int hits = 0;
  core::ParallelFor(pool, out.size(), [&](std::size_t i) {
    total += out[i];             // expect: no-shared-write-in-parallel
    hits = static_cast<int>(i);  // expect: no-shared-write-in-parallel
    ++hits;                      // expect: no-shared-write-in-parallel
    log.push_back(1);            // expect: no-shared-write-in-parallel
  });
  pool->Submit([&] { total = 1.0; });  // expect: no-shared-write-in-parallel
}

}  // namespace mhbench
