// mhb-lint: path(src/fl/fixture_parallel_write_clean.cc)
// Legal patterns the rule must not flag: per-index writes into pre-sized
// buffers (direct and via an index table), lambda locals and loop
// variables, and mutable value captures.
#include "core/thread_pool.h"

namespace mhbench {

void Dispatch(core::ThreadPool* pool, std::vector<double>& out,
              std::vector<std::size_t>& slot) {
  core::ParallelFor(pool, out.size(), [&](std::size_t i) {
    double acc = 0.0;
    for (int k = 0; k < 4; ++k) acc += static_cast<double>(k);
    out[i] = acc;
    out[slot[i]] += acc;
  });
  double snapshot = 0.0;
  pool->Submit([snapshot]() mutable { snapshot += 1.0; });
}

}  // namespace mhbench
