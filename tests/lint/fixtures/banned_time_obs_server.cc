// mhb-lint: path(src/obs/fixture_live.cc)
// Fixture: src/obs is no longer blanket-exempt from the wall-clock rules —
// only the manifest timestamp helper is.  Telemetry code under src/obs
// (exporter, HTTP server) must either avoid wall time or carry a justified
// allow, exactly like src/obs/live.cc does in the real tree.
#include <chrono>
#include <ctime>

long BareStamp() {
  long t = std::time(nullptr);  // expect: no-time-call
  auto wall =
      std::chrono::system_clock::now();  // expect: no-system-clock
  return t + wall.time_since_epoch().count();
}

long WaivedStamp() {
  // mhb-lint: allow(no-time-call) -- fixture mirroring live.cc: heartbeat timestamp is operator telemetry only
  return static_cast<long>(std::time(nullptr));
}

long Monotonic() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // legal
}
