// mhb-lint: path(src/obs/fixture_layering.cc)
// Layering: obs sits in the {obs, data, device, metrics} rank — core and
// tensor are below it, data is a peer, fl is above it.
#include "core/rng.h"
#include "tensor/tensor.h"
#include "data/tasks.h"  // expect: layering
#include "fl/engine.h"   // expect: layering

int ObsHelper() { return 1; }
