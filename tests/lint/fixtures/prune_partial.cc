// mhb-lint: path(src/fl/fixture_prune.cc)
// A used multi-rule allow with one dead rule name: the no-rand half
// suppresses a real finding, the no-time-call half is waiver debt that
// --prune reports without failing the build.

int Draw() {
  return rand();  // mhb-lint: allow(no-rand, no-time-call) -- fixture: half-stale multi-rule allow
}
