// mhb-lint: path(src/fl/fixture_unordered.cc)
// Fixture: hash-order iteration feeding an aggregation loop.  Lookups stay
// legal; iteration (range-for or explicit iterators) is flagged, including
// through a type alias.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using SeenSet = std::unordered_set<int>;

struct Aggregator {
  std::unordered_map<std::string, double> weights;
  std::map<std::string, double> sorted_weights;

  double Sum() const {
    double s = 0.0;
    for (const auto& kv : weights) {  // expect: no-unordered-iteration
      s += kv.second;
    }
    return s;
  }

  double SumSorted() const {
    double s = 0.0;
    for (const auto& kv : sorted_weights) s += kv.second;  // legal
    return s;
  }

  double Lookup(const std::string& k) const {
    auto it = weights.find(k);  // lookup, not iteration: legal
    return it == weights.end() ? 0.0 : it->second;
  }
};

int CountVia(const SeenSet& seen) {
  int n = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // expect: no-unordered-iteration
    n += *it;
  }
  return n;
}
