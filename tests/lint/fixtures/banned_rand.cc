// mhb-lint: path(src/fl/fixture_rand.cc)
// Fixture: every spelling of the C RNG is caught; member calls and foreign
// namespaces are not (context-awareness, not grep).
#include <cstdlib>

namespace mylib {
inline int rand() { return 4; }
}  // namespace mylib

struct Dice {
  int rand() { return 6; }
};

int Draw(Dice& d) {
  int x = std::rand();  // expect: no-rand
  x += rand();          // expect: no-rand
  std::srand(7u);       // expect: no-srand
  srand(7u);            // expect: no-srand
  x += mylib::rand();   // foreign namespace: legal
  x += d.rand();        // member call: legal
  // "rand()" in a comment or string is invisible to the tokenizer:
  const char* s = "rand()";
  return x + (s != nullptr);
}
