// mhb-lint: path(src/obs/fixture_time_obs.cc)
// Fixture: the same wall-clock reads as banned_time.cc, but under src/obs —
// the one place wall-clock timestamps are the point (run manifests).  The
// rule's exempt list must make this file clean.
#include <chrono>
#include <ctime>

long Stamp() {
  long t = std::time(nullptr);
  auto wall = std::chrono::system_clock::now();
  return t + wall.time_since_epoch().count();
}
