// mhb-lint: path(src/obs/manifest.cc)
// Fixture: the same wall-clock reads as banned_time.cc, but claiming the
// manifest writer — the one file where wall-clock timestamps are the point
// (run manifests).  The rules' exempt lists must make this file clean.
#include <chrono>
#include <ctime>

long Stamp() {
  long t = std::time(nullptr);
  auto wall = std::chrono::system_clock::now();
  return t + wall.time_since_epoch().count();
}
