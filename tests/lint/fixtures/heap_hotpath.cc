// mhb-lint: path(src/tensor/gemm_fixture.cc)
// Fixture: heap traffic in a kernel hot-path TU.  The files glob
// (src/tensor/gemm*.cc) must pick this virtual path up.
#include <cstdlib>
#include <vector>

float* Pack(std::vector<float>& buf, int n) {
  buf.resize(n);                     // expect: no-heap-in-hotpath
  buf.push_back(0.0f);               // expect: no-heap-in-hotpath
  buf.emplace_back(0.0f);            // expect: no-heap-in-hotpath
  float* a = new float[n];           // expect: no-heap-in-hotpath
  float* b = static_cast<float*>(std::malloc(n));  // expect: no-heap-in-hotpath
  float* c = static_cast<float*>(malloc(n));       // expect: no-heap-in-hotpath
  float* d = static_cast<float*>(
      aligned_alloc(64, 64));  // expect: no-heap-in-hotpath
  (void)a;
  (void)b;
  (void)c;
  return d;
}

// A vector *lookup* (no allocation) stays legal.
float At(const std::vector<float>& buf, int i) { return buf[i]; }
