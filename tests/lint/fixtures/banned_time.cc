// mhb-lint: path(src/fl/fixture_time.cc)
// Fixture: wall-clock reads in simulated-clock code.  steady_clock is the
// sanctioned duration source and stays legal.
#include <chrono>
#include <ctime>

long Now() {
  long t = std::time(nullptr);  // expect: no-time-call
  t += time(nullptr);           // expect: no-time-call
  auto wall =                   // (system_clock flagged on its own line)
      std::chrono::system_clock::now();  // expect: no-system-clock
  auto mono = std::chrono::steady_clock::now();  // legal
  return t + wall.time_since_epoch().count() +
         mono.time_since_epoch().count();
}

struct Sim {
  double time() const { return 0.0; }  // member named `time`: legal
};

double SimNow(const Sim& s) { return s.time(); }
