// mhb-lint: path(src/metrics/fixture_stdout.cc)
// Fixture: direct stdout writes from library code.  snprintf (formatting
// into a caller buffer) and fprintf to stderr stay legal, as does a local
// variable that happens to be named `cout`.
#include <cstdio>
#include <iostream>

void Report(double v) {
  std::cout << v;             // expect: no-stdout
  printf("%f\n", v);          // expect: no-stdout
  std::printf("%f\n", v);     // expect: no-stdout
  puts("done");               // expect: no-stdout
  fprintf(stdout, "%f\n", v); // expect: no-stdout
  fprintf(stderr, "%f\n", v); // stderr: legal
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%f", v);  // legal
  int cout = static_cast<int>(v);            // just a variable: legal
  (void)cout;
}
