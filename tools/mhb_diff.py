#!/usr/bin/env python3
"""Run-to-run regression differ for mhbench telemetry.

Usage: mhb_diff.py [options] BASELINE CANDIDATE

BASELINE and CANDIDATE are either two run directories (a directory holding
manifest.json [+ profile.json], or a --manifest-dir output holding exactly
one such run), two manifest.json paths, or two BENCH_*.json kernel reports
from tools/bench_report.py.  The mode is detected from file content
("kernels" -> bench report, "counters" -> run manifest).

What is compared, and against which gate:

  run mode
    counters            symmetric relative tolerance (--counter-rtol,
                        default 0: deterministic counters must match).
                        pool_tasks is skipped (worker-count dependent).
    histograms          p50/p95/p99; latency-named histograms use the
                        latency ratio gate, the rest use --counter-rtol.
    metrics             keys containing "acc" fail only when the candidate
                        is LOWER by more than --metric-rtol; everything
                        else is symmetric at --metric-rtol.
    profile.json        per-op count/gemm_flops at --counter-rtol,
                        per-op wall_us at the latency ratio gate.
                        heap_allocs is skipped (pool-warmup dependent).

  bench mode
    per-kernel speedup (fast/naive, threaded/serial per thread count, and
    reduced-precision/f32 — each BENCH entry carries its own ratio): the
    candidate's speedup may shrink by at most the latency ratio
    (machine-normalized, so two different hosts can be compared).
    Entries flagged threads_exceed_cpus on either side are exempt from
    the speedup gate (the parallel speedup is physically unattainable on
    that host); a notice is printed instead.  --absolute additionally
    gates raw fast wall_ns.  Reports refuse to compare across kernel
    backends (MHB_KERNELS / runtime dispatch).

Latency-style values (matched by name: wall/time/idle/_us/_ms/_ns) pass
while candidate <= baseline * --latency-ratio (default 1.3); they never
fail for being faster.

Exit status: 0 = no regression, 1 = regression found, 2 = usage/IO error.

Threshold overrides: --thresholds FILE points at a JSON object mapping a
key (counter, histogram, metric, op, or kernel name) to {"ratio": R} or
{"rtol": T}, replacing the default gate for that key.  Keys may be
fnmatch-style wildcards ("client_wall_us*" also covers the per-tier
"client_wall_us@mem16g.p50" variants); exact keys win over patterns.
"""
import argparse
import fnmatch
import json
import pathlib
import re
import sys

LATENCY_RE = re.compile(r"wall|time|idle|_us$|_ms$|_ns$")
SKIP_COUNTERS = {"pool_tasks"}
SKIP_PROFILE_FIELDS = {"heap_allocs", "scratch_peak_bytes"}


class Differ:
    def __init__(self, args):
        self.latency_ratio = args.latency_ratio
        self.counter_rtol = args.counter_rtol
        self.metric_rtol = args.metric_rtol
        self.overrides = {}
        if args.thresholds:
            with open(args.thresholds) as f:
                self.overrides = json.load(f)
        self.failures = []
        self.checked = 0

    def override(self, key):
        hit = self.overrides.get(key)
        if hit is not None:
            return hit
        for pattern in sorted(self.overrides):
            if fnmatch.fnmatchcase(key, pattern):
                return self.overrides[pattern]
        return {}

    def check_latency(self, key, base, cand):
        """Pass while cand <= base * ratio; faster never fails."""
        self.checked += 1
        ratio = self.override(key).get("ratio", self.latency_ratio)
        if base > 0 and cand > base * ratio:
            self.failures.append(
                f"{key}: {cand:g} exceeds {base:g} x {ratio:g} "
                f"(ratio {cand / base:.2f})")

    def check_rtol(self, key, base, cand, rtol, directional=None):
        """Symmetric |delta| <= rtol * |base|; directional='lower' fails
        only when the candidate is lower (accuracy-style metrics)."""
        self.checked += 1
        rtol = self.override(key).get("rtol", rtol)
        delta = cand - base
        if directional == "lower" and delta >= 0:
            return
        tol = rtol * max(abs(base), 1e-12)
        if abs(delta) > tol:
            self.failures.append(
                f"{key}: {base:g} -> {cand:g} (delta {delta:g}, "
                f"tol {tol:g})")

    def dispatch(self, key, base, cand, rtol):
        if LATENCY_RE.search(key):
            self.check_latency(key, base, cand)
        else:
            self.check_rtol(key, base, cand, rtol)


def load_json(path):
    with open(path) as f:
        return json.load(f)


def resolve_run(path):
    """Returns (manifest dict, profile dict or None) for a run argument."""
    p = pathlib.Path(path)
    if p.is_file():
        doc = load_json(p)
        profile = None
        sibling = p.parent / "profile.json"
        if p.name == "manifest.json" and sibling.is_file():
            profile = load_json(sibling)
        return doc, profile
    if p.is_dir():
        if (p / "manifest.json").is_file():
            run_dir = p
        else:
            runs = [d for d in p.iterdir()
                    if (d / "manifest.json").is_file()]
            if len(runs) != 1:
                raise FileNotFoundError(
                    f"{path}: expected one run dir with manifest.json, "
                    f"found {len(runs)}")
            run_dir = runs[0]
        manifest = load_json(run_dir / "manifest.json")
        profile = None
        if (run_dir / "profile.json").is_file():
            profile = load_json(run_dir / "profile.json")
        return manifest, profile
    raise FileNotFoundError(path)


def diff_runs(differ, base, cand):
    base_manifest, base_profile = base
    cand_manifest, cand_profile = cand

    for name, bval in base_manifest.get("counters", {}).items():
        if name in SKIP_COUNTERS:
            continue
        cval = cand_manifest.get("counters", {}).get(name)
        if cval is None:
            differ.failures.append(f"counter {name}: missing in candidate")
            continue
        differ.dispatch(name, bval, cval, differ.counter_rtol)

    for name, bh in base_manifest.get("histograms", {}).items():
        ch = cand_manifest.get("histograms", {}).get(name)
        if ch is None:
            differ.failures.append(f"histogram {name}: missing in candidate")
            continue
        for q in ("p50", "p95", "p99"):
            differ.dispatch(f"{name}.{q}", bh[q], ch[q],
                            differ.counter_rtol)

    for name, bval in base_manifest.get("metrics", {}).items():
        cval = cand_manifest.get("metrics", {}).get(name)
        if cval is None:
            differ.failures.append(f"metric {name}: missing in candidate")
            continue
        if "acc" in name:
            differ.check_rtol(name, bval, cval, differ.metric_rtol,
                              directional="lower")
        else:
            differ.dispatch(name, bval, cval, differ.metric_rtol)

    if base_profile is not None and cand_profile is not None:
        cand_ops = cand_profile.get("op_totals", {})
        for op, bstats in base_profile.get("op_totals", {}).items():
            cstats = cand_ops.get(op)
            if cstats is None:
                differ.failures.append(f"op {op}: missing in candidate")
                continue
            for field, bval in bstats.items():
                if field in SKIP_PROFILE_FIELDS:
                    continue
                cval = cstats.get(field, 0)
                differ.dispatch(f"{op}.{field}", bval, cval,
                                differ.counter_rtol)


def diff_bench(differ, base, cand, absolute):
    bctx, cctx = base.get("context", {}), cand.get("context", {})
    bback, cback = bctx.get("kernel_backend"), cctx.get("kernel_backend")
    if bback and cback and bback != cback:
        print(f"mhb_diff: kernel backend mismatch "
              f"({bback} vs {cback}); refusing to compare", file=sys.stderr)
        return 2

    for kernel, bentry in base.get("kernels", {}).items():
        centry = cand.get("kernels", {}).get(kernel)
        if centry is None:
            differ.failures.append(f"kernel {kernel}: missing in candidate")
            continue
        # Machine-normalized gate: the fast/naive speedup divides out the
        # host's absolute speed, so it transfers across machines.
        bspeed, cspeed = bentry.get("speedup"), centry.get("speedup")
        if (bentry.get("threads_exceed_cpus")
                or centry.get("threads_exceed_cpus")):
            print(f"mhb_diff: note: kernel {kernel}: thread count exceeds "
                  f"host CPUs; speedup gate skipped", file=sys.stderr)
        elif bspeed and cspeed:
            differ.checked += 1
            ratio = differ.override(kernel).get("ratio",
                                                differ.latency_ratio)
            if cspeed < bspeed / ratio:
                differ.failures.append(
                    f"kernel {kernel}: speedup {bspeed:g}x -> {cspeed:g}x "
                    f"(below {bspeed:g}/{ratio:g})")
        if absolute:
            differ.check_latency(f"kernel {kernel}.fast.wall_ns",
                                 bentry["fast"]["wall_ns"],
                                 centry["fast"]["wall_ns"])
    return None


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare two mhbench runs or kernel bench reports.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--latency-ratio", type=float, default=1.3,
                        help="max allowed candidate/baseline latency ratio")
    parser.add_argument("--counter-rtol", type=float, default=0.0,
                        help="relative tolerance for deterministic counters")
    parser.add_argument("--metric-rtol", type=float, default=0.05,
                        help="relative tolerance for final metrics")
    parser.add_argument("--thresholds",
                        help="JSON file with per-key gate overrides")
    parser.add_argument("--absolute", action="store_true",
                        help="bench mode: also gate absolute wall times")
    args = parser.parse_args()

    differ = Differ(args)
    try:
        base_probe = (load_json(args.baseline)
                      if pathlib.Path(args.baseline).is_file() else None)
        if base_probe is not None and "kernels" in base_probe:
            cand_probe = load_json(args.candidate)
            rc = diff_bench(differ, base_probe, cand_probe, args.absolute)
            if rc is not None:
                return rc
        else:
            diff_runs(differ, resolve_run(args.baseline),
                      resolve_run(args.candidate))
    except (OSError, KeyError, ValueError) as e:
        print(f"mhb_diff: {e!r}", file=sys.stderr)
        return 2

    if differ.checked == 0:
        print("mhb_diff: nothing comparable found", file=sys.stderr)
        return 2
    for failure in differ.failures:
        print(f"mhb_diff: REGRESSION {failure}")
    print(f"mhb_diff: {differ.checked} comparisons, "
          f"{len(differ.failures)} regressions")
    return 1 if differ.failures else 0


if __name__ == "__main__":
    sys.exit(main())
