#!/usr/bin/env python3
"""Diff det-audit ledgers and name the first divergent round + component.

The ledger (det_audit.jsonl, written by `mhbench run --det-audit`, format
in DESIGN.md 5k and src/obs/det_audit.h) records one 64-bit hash per
determinism component (rng, model, counters, hists) at every round barrier
plus a running chain hash.  Two runs of the same config are bit-identical
iff their ledgers match row for row — at *any* --threads, since thread
count is excluded from the comparison.  This tool is pure python, no
third-party dependencies.

Usage:
  mhb_bisect.py diff <a.jsonl> <b.jsonl>
      Compare two ledgers.  Prints "no divergence" and exits 0 when every
      round's chain and components match; otherwise names the first
      divergent round and the component(s) whose hashes differ and exits 1.
      Header mismatches (algorithm/seed/rounds — threads is deliberately
      ignored) and malformed ledgers exit 2.
  mhb_bisect.py run --binary <mhbench> [--threads-a 1] [--threads-b 4]
      [run flags...]
      Run the same config twice at two thread counts (each into its own
      temp manifest dir with --det-audit 1), then diff the ledgers as
      above.  Extra flags are forwarded to both `mhbench run` invocations
      verbatim (e.g. --task cifar10 --algorithm sheterofl --rounds 4).

Typical bisection loop: reproduce a divergence with `run`, note the round
R and component; re-run with MHB_DET_AUDIT_INJECT unset and a breakpoint
or extra logging scoped to round R's phase for that component (rng =>
a draw leaked into the parallel phase; model => merge order; counters /
hists => a metric bypassed the per-thread sinks).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

HEADER_KEYS = ("algorithm", "seed", "rounds")  # threads deliberately omitted


def fail(msg):
    """Usage / malformed-input / config-mismatch errors exit 2 (divergence
    is exit 1, reserved for diff_ledgers)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load_ledger(path):
    """Returns (header, rows) or exits 2 with a message."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"mhb_bisect: cannot read {path}: {e}")
    if not lines:
        fail(f"mhb_bisect: {path}: empty ledger")
    try:
        header = json.loads(lines[0])
        rows = [json.loads(ln) for ln in lines[1:]]
    except json.JSONDecodeError as e:
        fail(f"mhb_bisect: {path}: malformed JSON line: {e}")
    if header.get("det_audit") != 1:
        fail(f"mhb_bisect: {path}: not a det-audit ledger "
                 f"(header {header!r})")
    for row in rows:
        if "round" not in row or "components" not in row:
            fail(f"mhb_bisect: {path}: malformed row {row!r}")
    return header, rows


def diff_ledgers(path_a, path_b):
    """Returns process exit code: 0 identical, 1 divergent (printed)."""
    header_a, rows_a = load_ledger(path_a)
    header_b, rows_b = load_ledger(path_b)
    for key in HEADER_KEYS:
        if header_a.get(key) != header_b.get(key):
            fail(f"mhb_bisect: ledgers are from different configs: "
                     f"{key} {header_a.get(key)!r} vs {header_b.get(key)!r}")

    by_round_b = {row["round"]: row for row in rows_b}
    for row_a in rows_a:
        rnd = row_a["round"]
        row_b = by_round_b.get(rnd)
        if row_b is None:
            break  # length mismatch handled below
        comps_a, comps_b = row_a["components"], row_b["components"]
        divergent = sorted(
            set(k for k in comps_a if comps_a.get(k) != comps_b.get(k))
            | set(k for k in comps_b if k not in comps_a))
        if divergent:
            print(f"divergence at round {rnd}: "
                  f"component(s) {', '.join(divergent)}")
            for k in divergent:
                print(f"  {k}: {comps_a.get(k, '<absent>')} vs "
                      f"{comps_b.get(k, '<absent>')}")
            return 1
        if row_a.get("chain") != row_b.get("chain"):
            # Components matched but the chain didn't: an earlier row is
            # missing or reordered in one ledger.
            print(f"divergence at round {rnd}: chain mismatch with equal "
                  f"components (missing or reordered earlier rows)")
            return 1
    if len(rows_a) != len(rows_b):
        print(f"divergence: ledger lengths differ "
              f"({len(rows_a)} vs {len(rows_b)} rounds)")
        return 1
    print(f"no divergence ({len(rows_a)} rounds compared)")
    return 0


def run_mode(argv):
    parser = argparse.ArgumentParser(
        prog="mhb_bisect.py run",
        description="Run one config at two thread counts and diff ledgers.")
    parser.add_argument("--binary", required=True, help="mhbench binary")
    parser.add_argument("--threads-a", type=int, default=1)
    parser.add_argument("--threads-b", type=int, default=4)
    parser.add_argument("--keep", action="store_true",
                        help="keep the temp run directories")
    args, passthrough = parser.parse_known_args(argv)
    if not os.path.exists(args.binary):
        fail(f"mhb_bisect: no such binary: {args.binary}")
    for bad in ("--threads", "--manifest-dir", "--det-audit"):
        if bad in passthrough:
            fail(f"mhb_bisect: {bad} is managed by run mode; "
                     "drop it from the passthrough flags")

    tmp = tempfile.mkdtemp(prefix="mhb_bisect_")
    ledgers = []
    try:
        for label, threads in (("a", args.threads_a), ("b", args.threads_b)):
            out_dir = os.path.join(tmp, label)
            cmd = [args.binary, "run", *passthrough,
                   "--threads", str(threads),
                   "--manifest-dir", out_dir, "--det-audit", "1"]
            proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT)
            if proc.returncode != 0:
                sys.stdout.buffer.write(proc.stdout)
                fail(f"mhb_bisect: run failed (threads={threads}): "
                         f"{' '.join(cmd)}")
            found = []
            for root, _dirs, files in os.walk(out_dir):
                found += [os.path.join(root, f) for f in files
                          if f == "det_audit.jsonl"]
            if len(found) != 1:
                fail(f"mhb_bisect: expected one det_audit.jsonl under "
                         f"{out_dir}, found {len(found)}")
            ledgers.append(found[0])
        rc = diff_ledgers(ledgers[0], ledgers[1])
    finally:
        if args.keep:
            print(f"run directories kept under {tmp}", file=sys.stderr)
        else:
            shutil.rmtree(tmp, ignore_errors=True)
    return rc


def main():
    if len(sys.argv) < 2 or sys.argv[1] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if len(sys.argv) >= 2 else 2
    mode, rest = sys.argv[1], sys.argv[2:]
    if mode == "diff":
        if len(rest) != 2:
            fail("mhb_bisect: usage: mhb_bisect.py diff <a> <b>")
        return diff_ledgers(rest[0], rest[1])
    if mode == "run":
        return run_mode(rest)
    fail(f"mhb_bisect: unknown mode {mode!r} (want diff|run)")


if __name__ == "__main__":
    sys.exit(main())
