#!/usr/bin/env python3
"""mhb_lint: determinism & concurrency linter for the mhbench tree.

The benchmark's reproduction guarantees (bit-identical metrics, counters,
histograms and per-op FLOP attribution at any --threads value) are easy to
break with one stray rand(), a wall-clock read in a simulated-clock path, or
an unordered-container iteration feeding merge order.  This scanner enforces
the contract statically, at review time.

It is context-aware, not a grep: files are tokenized (comments, string and
char literals, raw strings stripped with line numbers preserved), banned
names match qualified identifiers (``std::rand`` matches ``rand``,
``std::rand`` and ``::rand`` but not ``engine.rand`` or ``mylib::rand``),
and the unordered-iteration rule tracks which identifiers in a file were
declared as ``std::unordered_map``/``unordered_set`` before flagging
range-for or ``.begin()`` iteration over them.

v2 adds three semantic rule kinds on the same tokenizer machinery:

  layering              quoted ``#include`` edges must point down the layer
                        order declared in the rule (up-edges and same-rank
                        cross-edges are violations)
  parallel_shared_write assignments / compound assigns / ++ / mutating
                        member calls on ref-captured outer state inside
                        lambdas passed to ParallelFor or Submit; per-index
                        writes into pre-sized buffers stay legal
  barrier_phase         Registry mutation calls must sit under a
                        ``// mhb-obs-phase: serial|parallel`` annotation,
                        serial-only calls may not appear in parallel
                        phases, and a 'serial' claim inside a
                        ParallelFor/Submit lambda is inconsistent

Rules, scopes and messages live in tools/lint_rules.json — new rules are
data, not code.  Deliberate violations are waived inline with

    // mhb-lint: allow(rule-id) -- why this one is fine

The justification is mandatory, and an allow that suppresses nothing is
itself an error, so waivers cannot go stale.  ``--prune`` additionally
reports rule names inside *used* multi-rule allows that suppressed nothing
(waiver debt), without affecting the exit code.

Usage:
    tools/mhb_lint.py                 # lint the configured roots (src/)
    tools/mhb_lint.py path...         # lint specific files/directories
    tools/mhb_lint.py --prune path...
    tools/mhb_lint.py --rules FILE --root DIR path...

Exit codes: 0 clean, 1 violations found, 2 usage/config error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<punct>::|->|.)
    """,
    re.DOTALL | re.VERBOSE,
)


class Token:
    __slots__ = ("text", "kind", "line")

    def __init__(self, text, kind, line):
        self.text = text
        self.kind = kind  # "id", "num", or "punct"
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.text!r}, {self.kind}, L{self.line})"


class Comment:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line


def tokenize(source):
    """Returns (tokens, comments); strings/chars are dropped, lines kept."""
    tokens, comments = [], []
    line = 1
    for m in TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        if kind == "comment":
            comments.append(Comment(text, line))
        elif kind in ("id", "num", "punct"):
            tokens.append(Token(text, kind, line))
        elif kind == "delim":
            continue
        line += text.count("\n")
    return tokens, comments


# ---------------------------------------------------------------------------
# Allow directives and fixture path overrides
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"mhb-lint:\s*allow\(([^)]*)\)(?:\s*--\s*(\S.*))?")
PATH_RE = re.compile(r"mhb-lint:\s*path\(([^)]+)\)")


class Allow:
    __slots__ = ("rules", "justification", "line", "used", "used_rules")

    def __init__(self, rules, justification, line):
        self.rules = rules
        self.justification = justification
        self.line = line
        self.used = False
        self.used_rules = set()  # rule ids that actually suppressed a finding


def parse_directives(comments):
    """Extracts allow waivers and an optional virtual-path override."""
    allows, virtual_path = [], None
    for c in comments:
        m = ALLOW_RE.search(c.text)
        if m:
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            justification = (m.group(2) or "").strip()
            allows.append(Allow(rules, justification, c.line))
        m = PATH_RE.search(c.text)
        if m and virtual_path is None:
            virtual_path = m.group(1).strip()
    return allows, virtual_path


# ---------------------------------------------------------------------------
# File context shared by all matchers
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def quoted_includes(source):
    """[(include_path, line)] for every quoted #include in the raw source.

    Extracted from the raw text, not the token stream: the tokenizer drops
    string literals, which is exactly where include paths live.  Angle
    includes (system headers) are never layer edges and are ignored.
    """
    out = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if m:
            out.append((m.group(1), lineno))
    return out


class FileContext:
    """Everything a matcher may inspect about one file."""

    __slots__ = ("tokens", "comments", "includes", "path", "scope_path")

    def __init__(self, tokens, comments, includes, path, scope_path):
        self.tokens = tokens
        self.comments = comments
        self.includes = includes  # [(quoted include path, line)]
        self.path = path          # as reported in findings
        self.scope_path = scope_path  # repo-relative, after path() overrides


# ---------------------------------------------------------------------------
# Rule matching
# ---------------------------------------------------------------------------


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message


def in_scope(rule, scope_path):
    """True when `scope_path` (repo-relative, /-separated) is in scope."""
    dirs = rule.get("dirs")
    files = rule.get("files")
    selected = False
    if dirs:
        selected = any(
            scope_path == d or scope_path.startswith(d + "/") for d in dirs
        )
    if not selected and files:
        selected = any(fnmatch.fnmatch(scope_path, g) for g in files)
    if not selected:
        return False
    for ex in rule.get("exempt", ()):
        if scope_path == ex or scope_path.startswith(ex + "/"):
            return False
        if fnmatch.fnmatch(scope_path, ex):
            return False
    return True


# Keywords that legally precede a call expression.  Any *other* identifier
# directly before a matched name means a declaration (`inline int rand(`,
# `double time() const`), which the banned-call rules deliberately skip:
# they ban use of the API, not reusing the name.
EXPR_KEYWORDS = frozenset(
    "return throw case else do while if for switch goto break continue "
    "default catch co_return co_yield co_await sizeof alignof typeid "
    "delete new and or not xor bitand bitor compl not_eq and_eq or_eq "
    "xor_eq operator static_assert decltype noexcept requires".split()
)


def qualifier_chain(tokens, i):
    """Qualifiers before tokens[i]: ([...ids], member_access, before_idx).

    Walks ``a::b::<tok>`` backwards.  member_access is True when the name is
    reached via ``.`` or ``->`` (so ``obj.rand()`` never matches a banned
    free function).  before_idx is the index of the token preceding the
    whole qualified name (-1 at file start).
    """
    j = i - 1
    if j >= 0 and tokens[j].kind == "punct" and tokens[j].text in (".", "->"):
        return [], True, j
    chain = []
    while (
        j - 1 >= 0
        and tokens[j].kind == "punct"
        and tokens[j].text == "::"
        and tokens[j - 1].kind == "id"
    ):
        chain.append(tokens[j - 1].text)
        j -= 2
    chain.reverse()
    # `mylib::rand` where mylib is itself member-accessed: treat as member.
    if j >= 0 and tokens[j].kind == "punct" and tokens[j].text in (".", "->"):
        return chain, True, j
    return chain, False, j


def next_token(tokens, i):
    return tokens[i + 1] if i + 1 < len(tokens) else None


def match_banned(rule, ctx):
    """Matches qualified-name / keyword / member-call patterns."""
    tokens, path = ctx.tokens, ctx.path
    out = []
    specs = rule["tokens"]
    # Index by terminal identifier for a single pass over the token stream.
    by_name = {}
    members = {}
    keywords = set()
    for spec in specs:
        if spec.get("keyword"):
            keywords.add(spec["name"])
        elif "member" in spec:
            members[spec["member"]] = spec
        else:
            parts = spec["name"].split("::")
            by_name.setdefault(parts[-1], []).append((parts[:-1], spec))
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.text in keywords:
            out.append(Violation(path, tok.line, rule["id"], rule["message"]))
            continue
        prev = tokens[i - 1] if i > 0 else None
        is_member = (
            prev is not None
            and prev.kind == "punct"
            and prev.text in (".", "->")
        )
        if tok.text in members and is_member:
            nxt = next_token(tokens, i)
            if nxt is not None and nxt.text == "(":
                out.append(
                    Violation(path, tok.line, rule["id"], rule["message"])
                )
            continue
        for quals, spec in by_name.get(tok.text, ()):
            chain, member, before = qualifier_chain(tokens, i)
            if member:
                continue
            # The written qualification must be a suffix of the banned name's
            # (empty is fine: `rand(` and `time(` match without `std::`), so
            # an unrelated `mylib::rand` stays legal.
            if chain and chain != quals[len(quals) - len(chain):]:
                continue
            # Short names that double as ordinary identifiers (`cout` as a
            # channels-out variable) only match when written qualified.
            if spec.get("require_qualified") and not chain:
                continue
            if spec.get("call"):
                nxt = next_token(tokens, i)
                if nxt is None or nxt.text != "(":
                    continue
                prev = tokens[before] if before >= 0 else None
                if (
                    prev is not None
                    and prev.kind == "id"
                    and prev.text not in EXPR_KEYWORDS
                ):
                    continue  # declaration, not a call
                first_arg = spec.get("first_arg")
                if first_arg is not None:
                    arg = next_token(tokens, i + 1)
                    if arg is None or arg.text != first_arg:
                        continue
            out.append(Violation(path, tok.line, rule["id"], rule["message"]))
            break
    return out


UNORDERED_TYPES = ("unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset")


def skip_template_args(tokens, i):
    """tokens[i] is '<'; returns index just past the matching '>'."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in (";", "{"):  # malformed / operator< — bail out
            return i
        i += 1
    return i


def unordered_names(tokens):
    """Identifiers declared in this file as unordered containers.

    Covers member/local/param declarations (``std::unordered_map<K,V> ids_``,
    ``const unordered_set<int>& s``) and one level of alias indirection
    (``using Index = std::unordered_map<...>; Index by_name;``).
    """
    names, aliases = set(), set()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind == "id" and tok.text in UNORDERED_TYPES:
            # `using Alias = std::unordered_map<...>;` — capture the alias.
            j = i
            while j > 0 and tokens[j - 1].text in ("::", "std"):
                j -= 1
            if (
                j - 3 >= 0
                and tokens[j - 1].text == "="
                and tokens[j - 2].kind == "id"
                and tokens[j - 3].text == "using"
            ):
                aliases.add(tokens[j - 2].text)
            k = i + 1
            if k < len(tokens) and tokens[k].text == "<":
                k = skip_template_args(tokens, k)
            while k < len(tokens) and tokens[k].text in ("&", "*", "const",
                                                         "&&"):
                k += 1
            if k < len(tokens) and tokens[k].kind == "id":
                names.add(tokens[k].text)
            i = k
            continue
        i += 1
    if aliases:
        for i, tok in enumerate(tokens):
            if tok.kind == "id" and tok.text in aliases:
                prev = tokens[i - 1] if i > 0 else None
                if prev is not None and prev.text in (".", "->", "::",
                                                      "using"):
                    continue
                nxt = next_token(tokens, i)
                k = i + 1
                while k < len(tokens) and tokens[k].text in ("&", "*",
                                                             "const", "&&"):
                    k += 1
                if k < len(tokens) and tokens[k].kind == "id" and (
                    nxt is None or nxt.text != "="
                ):
                    names.add(tokens[k].text)
    return names


def match_unordered_iteration(rule, ctx):
    """Flags range-for over, or .begin()/.end() on, unordered containers."""
    tokens, path = ctx.tokens, ctx.path
    names = unordered_names(tokens)
    if not names:
        return []
    out = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        # `tracked.begin()` / `tracked->cbegin()` etc.  Only begin-flavored
        # members: iteration always needs one, while `it != m.end()` also
        # appears in legal find() lookups.
        if tok.text in ("begin", "cbegin", "rbegin"):
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.text in (".", "->") and i >= 2:
                recv = tokens[i - 2]
                nxt = next_token(tokens, i)
                if (
                    recv.kind == "id"
                    and recv.text in names
                    and nxt is not None
                    and nxt.text == "("
                ):
                    out.append(
                        Violation(path, tok.line, rule["id"], rule["message"])
                    )
        # `for (auto& kv : tracked)` — find the top-level ':' inside the
        # for-parens ('::' is a single token, so a lone ':' is the range
        # separator) and look for a tracked name in the range expression.
        if tok.text == "for":
            nxt = next_token(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            depth, j, colon = 0, i + 1, None
            while j < len(tokens):
                t = tokens[j].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == ":" and depth == 1 and colon is None:
                    colon = j
                j += 1
            if colon is None:
                continue
            for k in range(colon + 1, j):
                t = tokens[k]
                prev = tokens[k - 1]
                if (
                    t.kind == "id"
                    and t.text in names
                    and prev.text not in (".", "->")
                ):
                    out.append(
                        Violation(path, tok.line, rule["id"], rule["message"])
                    )
                    break
    return out


# ---------------------------------------------------------------------------
# layering: quoted-include edges must point down the declared layer order
# ---------------------------------------------------------------------------


def match_layering(rule, ctx):
    """Include-graph layering: each quoted #include must target a strictly
    lower layer.  A file's own layer is the first path component of its
    scope path under the rule's root; includes of unknown first components
    (third-party, same-file helpers) are ignored.  Up-edges and same-rank
    cross-edges are violations; an edge that must exist for a transition
    period carries an inline allow with a justification.
    """
    rank = {}
    for r, group in enumerate(rule["layers"]):
        for name in group:
            rank[name] = r
    root = rule.get("root", "src")
    parts = ctx.scope_path.split("/")
    if len(parts) < 2 or parts[0] != root or parts[1] not in rank:
        return []
    own = parts[1]
    out = []
    for inc, line in ctx.includes:
        target = inc.split("/", 1)[0]
        if target == own or target not in rank:
            continue
        if rank[target] > rank[own]:
            out.append(Violation(
                ctx.path, line, rule["id"],
                f"up-edge: layer '{own}' may not include \"{inc}\" from "
                f"higher layer '{target}'; " + rule["message"],
            ))
        elif rank[target] == rank[own]:
            out.append(Violation(
                ctx.path, line, rule["id"],
                f"cross-edge: '{own}' and '{target}' share a rank and must "
                f"stay independent; " + rule["message"],
            ))
    return out


# ---------------------------------------------------------------------------
# Lambdas handed to the worker pool (shared by two rules below)
# ---------------------------------------------------------------------------

PARALLEL_ENTRY_POINTS = frozenset(("ParallelFor", "Submit"))


def find_matching(tokens, i, open_t, close_t):
    """tokens[i] is `open_t`; index of the matching `close_t` (or the end)."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(tokens) - 1


class LambdaInfo:
    __slots__ = ("line", "default", "ref_captures", "value_captures",
                 "params", "body_start", "body_end")

    def __init__(self):
        self.line = 0
        self.default = None       # "&", "=", or None (explicit list only)
        self.ref_captures = set()
        self.value_captures = set()
        self.params = set()
        self.body_start = -1      # token index of the body '{'
        self.body_end = -1        # token index of the matching '}'


def parse_lambda(tokens, i):
    """Parses a lambda whose introducer '[' sits at tokens[i]; None if the
    construct has no body (it was a subscript after all)."""
    lam = LambdaInfo()
    lam.line = tokens[i].line
    close = find_matching(tokens, i, "[", "]")
    # Split the capture list at depth-0 commas (init-captures may nest).
    segs, cur, depth = [], [], 0
    for j in range(i + 1, close):
        t = tokens[j]
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            segs.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        segs.append(cur)
    for seg in segs:
        if not seg:
            continue
        first = seg[0]
        if first.text == "&":
            if len(seg) >= 2 and seg[1].kind == "id":
                lam.ref_captures.add(seg[1].text)
            else:
                lam.default = "&"
        elif first.text == "=":
            lam.default = "="
        elif first.text in ("*", "this"):
            pass  # [this] / [*this]
        elif first.kind == "id":
            lam.value_captures.add(first.text)  # value or init capture
    # Parameter list (optional).
    j = close + 1
    if j < len(tokens) and tokens[j].text == "(":
        pclose = find_matching(tokens, j, "(", ")")
        seg, depth = [], 0
        for k in range(j + 1, pclose):
            t = tokens[k]
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                _add_param(lam, seg)
                seg = []
            else:
                seg.append(t)
        _add_param(lam, seg)
        j = pclose + 1
    # Specifiers (mutable/noexcept/-> type) up to the body.
    while j < len(tokens) and tokens[j].text != "{":
        if tokens[j].text in (";", ")"):  # no body: not a lambda after all
            return None
        j += 1
    if j >= len(tokens):
        return None
    lam.body_start = j
    lam.body_end = find_matching(tokens, j, "{", "}")
    return lam


def _add_param(lam, seg):
    """Records the declared name of one parameter segment: the last
    identifier before any top-level default-argument '='."""
    cut = len(seg)
    depth = 0
    for idx, t in enumerate(seg):
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.text == "=" and depth == 0:
            cut = idx
            break
    ids = [t for t in seg[:cut] if t.kind == "id" and t.text != "const"]
    if ids:
        lam.params.add(ids[-1].text)


def parallel_lambdas(tokens):
    """All lambdas appearing as direct arguments to ParallelFor / Submit."""
    out = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in PARALLEL_ENTRY_POINTS:
            continue
        nxt = next_token(tokens, i)
        if nxt is None or nxt.text != "(":
            continue
        close = find_matching(tokens, i + 1, "(", ")")
        j = i + 2
        while j < close:
            t = tokens[j]
            if t.text == "[" and tokens[j - 1].text in ("(", ","):
                lam = parse_lambda(tokens, j)
                if lam is not None:
                    out.append(lam)
                    j = lam.body_end + 1
                    continue
            j += 1
    return out


DECL_SKIP = ("&", "*", "&&", "const")


def body_locals(tokens, start, end):
    """Names declared inside tokens[start+1:end] (type-name pairs).

    Heuristic declaration shape: an identifier (optionally ``a::b``
    qualified, optionally templated) followed by ref/pointer/const
    decorations and a second identifier that is itself followed by
    '=', ';', ',', '(' or '{'.  Catches locals, loop variables and
    RAII guards; function calls (`name(`) have no second identifier.
    """
    locals_ = set()
    k = start + 1
    while k < end:
        t = tokens[k]
        if t.kind == "id" and t.text not in EXPR_KEYWORDS:
            prev = tokens[k - 1]
            if prev.text in (".", "->", "::"):
                k += 1
                continue
            j = k
            while (j + 2 < end and tokens[j + 1].text == "::"
                   and tokens[j + 2].kind == "id"):
                j += 2
            j += 1
            if j < end and tokens[j].text == "<":
                j = skip_template_args(tokens, j)
            while j < end and tokens[j].text in DECL_SKIP:
                j += 1
            if (j < end and tokens[j].kind == "id"
                    and tokens[j].text not in EXPR_KEYWORDS):
                follower = tokens[j + 1] if j + 1 < end else None
                if follower is not None and follower.text in ("=", ";", ",",
                                                              "(", "{"):
                    locals_.add(tokens[j].text)
                    k = j + 1
                    continue
        k += 1
    return locals_


def lvalue_base(tokens, j, stop):
    """Walks left from tokens[j] to the base identifier of an lvalue.

    Returns (base_name_or_None, saw_index): `m[i].field` yields
    ('m', True) — an indexed write into a pre-sized buffer, which the
    parallel rule treats as legal.  Qualified names (Namespace::x) and
    unresolvable shapes yield None.
    """
    saw_index = False
    while j > stop:
        t = tokens[j]
        if t.text in ("]", ")"):
            open_t = "[" if t.text == "]" else "("
            close_t = t.text
            depth = 0
            while j > stop:
                if tokens[j].text == close_t:
                    depth += 1
                elif tokens[j].text == open_t:
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if close_t == "]":
                saw_index = True
            j -= 1
            continue
        if t.kind == "id":
            if j - 1 > stop and tokens[j - 1].text in (".", "->"):
                j -= 2
                continue
            if j - 1 > stop and tokens[j - 1].text == "::":
                return None, saw_index
            return t.text, saw_index
        return None, saw_index
    return None, saw_index


# Ops that make the '=' before/at them a comparison or compound, not a
# plain assignment.
ASSIGN_NEIGHBOR_OPS = frozenset("=!<>+-*/%&|^")
COMPOUND_OP_CHARS = frozenset("+-*/%&|^")


def match_parallel_shared_write(rule, ctx):
    """Writes to ref-captured outer state inside pool lambdas.

    Flags plain assignment, compound assignment, ++/-- and mutating member
    calls whose lvalue base is captured by reference (explicitly, or via a
    ``[&]`` default without being a lambda local/parameter) and reached
    without an index.  Indexed writes (`out[i] = ...`) are the sanctioned
    per-slot pattern and stay legal.
    """
    tokens = ctx.tokens
    mutators = frozenset(rule.get("mutators", (
        "push_back", "pop_back", "emplace_back", "emplace", "insert",
        "erase", "clear", "resize", "assign", "reserve", "swap",
    )))
    out = []

    def shared_write(lam, locals_, base, saw_index):
        if base is None or saw_index:
            return False
        if (base in locals_ or base in lam.params
                or base in lam.value_captures or base == "this"):
            return False
        if base in lam.ref_captures:
            return True
        return lam.default == "&"

    for lam in parallel_lambdas(tokens):
        locals_ = body_locals(tokens, lam.body_start, lam.body_end)
        start, end = lam.body_start, lam.body_end
        for k in range(start + 1, end):
            t = tokens[k]
            prev = tokens[k - 1]
            nxt = tokens[k + 1] if k + 1 < end else None
            base, saw_index, what = None, False, None
            if t.text == "=" and t.kind == "punct":
                if prev.text in ASSIGN_NEIGHBOR_OPS:
                    continue  # ==, !=, <=, >=, compound (handled below)
                if nxt is not None and nxt.text == "=":
                    continue  # first half of ==
                if not (prev.kind == "id" or prev.text in ("]", ")")):
                    continue
                base, saw_index = lvalue_base(tokens, k - 1, start)
                what = "assignment"
            elif (t.text in COMPOUND_OP_CHARS and nxt is not None
                  and nxt.text == "="
                  and (k + 2 >= end or tokens[k + 2].text != "=")
                  and (prev.kind == "id" or prev.text in ("]", ")"))):
                base, saw_index = lvalue_base(tokens, k - 1, start)
                what = f"'{t.text}=' update"
            elif (t.text in ("+", "-") and nxt is not None
                  and nxt.text == t.text):
                if prev.kind == "id" or prev.text in ("]", ")"):
                    base, saw_index = lvalue_base(tokens, k - 1, start)
                elif (k + 2 < end and tokens[k + 2].kind == "id"
                      and prev.text != t.text):
                    base = tokens[k + 2].text
                    saw_index = (k + 3 < end and tokens[k + 3].text == "[")
                what = f"'{t.text}{t.text}'"
            elif (t.kind == "id" and t.text in mutators
                  and prev.text in (".", "->")
                  and nxt is not None and nxt.text == "("):
                base, saw_index = lvalue_base(tokens, k - 2, start)
                what = f"mutating call '.{t.text}()'"
            if what is None:
                continue
            if shared_write(lam, locals_, base, saw_index):
                out.append(Violation(
                    ctx.path, t.line, rule["id"],
                    f"{what} on '{base}', captured by reference in a "
                    f"ParallelFor/Submit lambda; " + rule["message"],
                ))
    return out


# ---------------------------------------------------------------------------
# barrier_phase: Registry mutations must sit in annotated phases
# ---------------------------------------------------------------------------

PHASE_RE = re.compile(r"mhb-obs-phase:\s*([A-Za-z_]\w*)")


def match_barrier_phase(rule, ctx):
    """Verifies the per-file ``// mhb-obs-phase: serial|parallel``
    annotations around Registry mutation calls.

    An annotation governs from its line until the next annotation.  Three
    checks: every Registry mutation must be governed by some annotation;
    serial-only calls must not be governed by 'parallel'; and a call
    governed by 'serial' must not sit lexically inside a ParallelFor/Submit
    lambda (the annotation would be lying).  The reverse direction —
    'parallel' code outside a lambda — is deliberately legal: algorithm
    RunClient bodies execute in the parallel phase without containing the
    dispatch lambda themselves.
    """
    serial_only = frozenset(rule.get("serial_only", ()))
    parallel_safe = frozenset(rule.get("parallel_safe", ()))
    receivers = frozenset(rule.get("receivers", ("reg", "registry",
                                                 "registry_")))
    members = serial_only | parallel_safe
    out = []
    annotations = []
    for c in ctx.comments:
        for m in PHASE_RE.finditer(c.text):
            phase = m.group(1)
            if phase not in ("serial", "parallel"):
                out.append(Violation(
                    ctx.path, c.line, rule["id"],
                    f"unknown phase '{phase}' in mhb-obs-phase annotation; "
                    "use 'serial' or 'parallel'",
                ))
            annotations.append((c.line, phase))
    annotations.sort()

    def phase_at(line):
        current = None
        for ln, ph in annotations:
            if ln > line:
                break
            current = ph
        return current

    tokens = ctx.tokens
    lambdas = parallel_lambdas(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in members:
            continue
        prev = tokens[i - 1] if i > 0 else None
        nxt = next_token(tokens, i)
        if (prev is None or prev.text not in (".", "->")
                or nxt is None or nxt.text != "("):
            continue
        recv = tokens[i - 2] if i >= 2 else None
        if recv is None or recv.kind != "id" or recv.text not in receivers:
            continue
        phase = phase_at(tok.line)
        if phase is None:
            out.append(Violation(
                ctx.path, tok.line, rule["id"],
                f"registry mutation '{tok.text}' with no mhb-obs-phase "
                "annotation in effect; " + rule["message"],
            ))
            continue
        if phase == "parallel" and tok.text in serial_only:
            out.append(Violation(
                ctx.path, tok.line, rule["id"],
                f"serial-only registry call '{tok.text}' under a "
                "'parallel' phase annotation; " + rule["message"],
            ))
        if phase == "serial" and any(
                lam.body_start < i < lam.body_end for lam in lambdas):
            out.append(Violation(
                ctx.path, tok.line, rule["id"],
                f"registry call '{tok.text}' is annotated 'serial' but "
                "sits inside a ParallelFor/Submit lambda; fix the "
                "annotation or move the call to the barrier",
            ))
    return out


MATCHERS = {
    "banned": match_banned,
    "unordered_iteration": match_unordered_iteration,
    "layering": match_layering,
    "parallel_shared_write": match_parallel_shared_write,
    "barrier_phase": match_barrier_phase,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_file(path, scope_path, rules):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            source = f.read()
    except OSError as e:
        return [Violation(path, 0, "io-error", str(e))], []
    tokens, comments = tokenize(source)
    allows, virtual_path = parse_directives(comments)
    if virtual_path is not None:
        scope_path = virtual_path
    known = {r["id"] for r in rules}
    ctx = FileContext(tokens, comments, quoted_includes(source), path,
                      scope_path)

    violations = []
    seen = set()
    for rule in rules:
        if not in_scope(rule, scope_path):
            continue
        for v in MATCHERS[rule["kind"]](rule, ctx):
            # Nested pool lambdas are scanned once per enclosing lambda;
            # report each finding once.
            key = (v.line, v.rule, v.message)
            if key not in seen:
                seen.add(key)
                violations.append(v)

    # Apply waivers: an allow covers its own line (trailing comment) and the
    # next line (comment-above style).
    allows_by_line = {}
    for a in allows:
        allows_by_line.setdefault(a.line, []).append(a)
        allows_by_line.setdefault(a.line + 1, []).append(a)
    kept = []
    for v in violations:
        waived = False
        for a in allows_by_line.get(v.line, ()):
            if v.rule in a.rules and a.justification:
                a.used = True
                a.used_rules.add(v.rule)
                waived = True
        if not waived:
            kept.append(v)
    violations = kept

    # The escape hatch polices itself.
    for a in allows:
        if not a.justification:
            violations.append(
                Violation(
                    path, a.line, "allow-needs-justification",
                    "mhb-lint: allow(...) must carry '-- <why this is ok>'",
                )
            )
            continue
        for r in a.rules:
            if r not in known:
                violations.append(
                    Violation(
                        path, a.line, "allow-unknown-rule",
                        f"allow names unknown rule '{r}'",
                    )
                )
        if not a.used:
            violations.append(
                Violation(
                    path, a.line, "allow-unused",
                    "allow suppresses nothing on this or the next line; "
                    "remove the stale waiver",
                )
            )

    # Waiver debt (--prune): rules named in a *used* allow that suppressed
    # nothing.  Not an error — the allow is live — but the extra rule name
    # is dead weight worth surfacing in CI logs.
    prunes = []
    for a in allows:
        if not a.justification or not a.used:
            continue  # already an error above
        for r in a.rules:
            if r in known and r not in a.used_rules:
                prunes.append((path, a.line, r))
    return violations, prunes


def collect_files(paths, root, config):
    exts = tuple(config.get("extensions", [".cc", ".h"]))
    if not paths:
        paths = [os.path.join(root, r) for r in config.get("roots", ["src"])]
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(exts):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"mhb_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Determinism & concurrency linter (rules in "
        "tools/lint_rules.json)."
    )
    parser.add_argument("paths", nargs="*", help="files or directories "
                        "(default: the configured roots)")
    parser.add_argument("--rules", default=None,
                        help="rules JSON (default: lint_rules.json next to "
                        "this script)")
    parser.add_argument("--root", default=None,
                        help="repo root for scope paths (default: parent of "
                        "the rules file's directory)")
    parser.add_argument("--prune", action="store_true",
                        help="also report rule names in used allows that "
                        "suppressed nothing (informational; does not affect "
                        "the exit code)")
    args = parser.parse_args(argv)

    rules_path = args.rules or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "lint_rules.json"
    )
    try:
        with open(rules_path, "r", encoding="utf-8") as f:
            config = json.load(f)
    except (OSError, ValueError) as e:
        print(f"mhb_lint: cannot load rules: {e}", file=sys.stderr)
        return 2
    rules = config.get("rules", [])
    for rule in rules:
        if rule.get("kind") not in MATCHERS:
            print(
                f"mhb_lint: rule '{rule.get('id')}' has unknown kind "
                f"'{rule.get('kind')}'",
                file=sys.stderr,
            )
            return 2

    root = os.path.abspath(
        args.root or os.path.dirname(os.path.dirname(rules_path))
    )
    files = collect_files(args.paths, root, config)

    all_violations = []
    all_prunes = []
    for path in files:
        scope_path = os.path.relpath(os.path.abspath(path), root)
        scope_path = scope_path.replace(os.sep, "/")
        violations, prunes = lint_file(path, scope_path, rules)
        all_violations.extend(violations)
        all_prunes.extend(prunes)

    all_violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in all_violations:
        print(f"{v.path}:{v.line}: {v.rule}: {v.message}")
    if args.prune and all_prunes:
        # 'prune:' prefix keeps these lines distinct from findings (they
        # never match the `path:line: rule:` shape the fixture tests parse).
        for path, line, r in sorted(all_prunes):
            print(f"prune: {path}:{line}: allow({r}) suppresses nothing "
                  "here; narrow or remove the waiver")
        print(
            f"mhb_lint: {len(all_prunes)} prunable allow rule(s) "
            "(informational)",
            file=sys.stderr,
        )
    if all_violations:
        print(
            f"mhb_lint: {len(all_violations)} violation(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
