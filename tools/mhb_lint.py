#!/usr/bin/env python3
"""mhb_lint: determinism & concurrency linter for the mhbench tree.

The benchmark's reproduction guarantees (bit-identical metrics, counters,
histograms and per-op FLOP attribution at any --threads value) are easy to
break with one stray rand(), a wall-clock read in a simulated-clock path, or
an unordered-container iteration feeding merge order.  This scanner enforces
the contract statically, at review time.

It is context-aware, not a grep: files are tokenized (comments, string and
char literals, raw strings stripped with line numbers preserved), banned
names match qualified identifiers (``std::rand`` matches ``rand``,
``std::rand`` and ``::rand`` but not ``engine.rand`` or ``mylib::rand``),
and the unordered-iteration rule tracks which identifiers in a file were
declared as ``std::unordered_map``/``unordered_set`` before flagging
range-for or ``.begin()`` iteration over them.

Rules, scopes and messages live in tools/lint_rules.json — new rules are
data, not code.  Deliberate violations are waived inline with

    // mhb-lint: allow(rule-id) -- why this one is fine

The justification is mandatory, and an allow that suppresses nothing is
itself an error, so waivers cannot go stale.

Usage:
    tools/mhb_lint.py                 # lint the configured roots (src/)
    tools/mhb_lint.py path...         # lint specific files/directories
    tools/mhb_lint.py --rules FILE --root DIR path...

Exit codes: 0 clean, 1 violations found, 2 usage/config error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<punct>::|->|.)
    """,
    re.DOTALL | re.VERBOSE,
)


class Token:
    __slots__ = ("text", "kind", "line")

    def __init__(self, text, kind, line):
        self.text = text
        self.kind = kind  # "id", "num", or "punct"
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.text!r}, {self.kind}, L{self.line})"


class Comment:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line


def tokenize(source):
    """Returns (tokens, comments); strings/chars are dropped, lines kept."""
    tokens, comments = [], []
    line = 1
    for m in TOKEN_RE.finditer(source):
        kind = m.lastgroup
        text = m.group()
        if kind == "comment":
            comments.append(Comment(text, line))
        elif kind in ("id", "num", "punct"):
            tokens.append(Token(text, kind, line))
        elif kind == "delim":
            continue
        line += text.count("\n")
    return tokens, comments


# ---------------------------------------------------------------------------
# Allow directives and fixture path overrides
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"mhb-lint:\s*allow\(([^)]*)\)(?:\s*--\s*(\S.*))?")
PATH_RE = re.compile(r"mhb-lint:\s*path\(([^)]+)\)")


class Allow:
    __slots__ = ("rules", "justification", "line", "used")

    def __init__(self, rules, justification, line):
        self.rules = rules
        self.justification = justification
        self.line = line
        self.used = False


def parse_directives(comments):
    """Extracts allow waivers and an optional virtual-path override."""
    allows, virtual_path = [], None
    for c in comments:
        m = ALLOW_RE.search(c.text)
        if m:
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            justification = (m.group(2) or "").strip()
            allows.append(Allow(rules, justification, c.line))
        m = PATH_RE.search(c.text)
        if m and virtual_path is None:
            virtual_path = m.group(1).strip()
    return allows, virtual_path


# ---------------------------------------------------------------------------
# Rule matching
# ---------------------------------------------------------------------------


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message


def in_scope(rule, scope_path):
    """True when `scope_path` (repo-relative, /-separated) is in scope."""
    dirs = rule.get("dirs")
    files = rule.get("files")
    selected = False
    if dirs:
        selected = any(
            scope_path == d or scope_path.startswith(d + "/") for d in dirs
        )
    if not selected and files:
        selected = any(fnmatch.fnmatch(scope_path, g) for g in files)
    if not selected:
        return False
    for ex in rule.get("exempt", ()):
        if scope_path == ex or scope_path.startswith(ex + "/"):
            return False
        if fnmatch.fnmatch(scope_path, ex):
            return False
    return True


# Keywords that legally precede a call expression.  Any *other* identifier
# directly before a matched name means a declaration (`inline int rand(`,
# `double time() const`), which the banned-call rules deliberately skip:
# they ban use of the API, not reusing the name.
EXPR_KEYWORDS = frozenset(
    "return throw case else do while if for switch goto break continue "
    "default catch co_return co_yield co_await sizeof alignof typeid "
    "delete new and or not xor bitand bitor compl not_eq and_eq or_eq "
    "xor_eq operator static_assert decltype noexcept requires".split()
)


def qualifier_chain(tokens, i):
    """Qualifiers before tokens[i]: ([...ids], member_access, before_idx).

    Walks ``a::b::<tok>`` backwards.  member_access is True when the name is
    reached via ``.`` or ``->`` (so ``obj.rand()`` never matches a banned
    free function).  before_idx is the index of the token preceding the
    whole qualified name (-1 at file start).
    """
    j = i - 1
    if j >= 0 and tokens[j].kind == "punct" and tokens[j].text in (".", "->"):
        return [], True, j
    chain = []
    while (
        j - 1 >= 0
        and tokens[j].kind == "punct"
        and tokens[j].text == "::"
        and tokens[j - 1].kind == "id"
    ):
        chain.append(tokens[j - 1].text)
        j -= 2
    chain.reverse()
    # `mylib::rand` where mylib is itself member-accessed: treat as member.
    if j >= 0 and tokens[j].kind == "punct" and tokens[j].text in (".", "->"):
        return chain, True, j
    return chain, False, j


def next_token(tokens, i):
    return tokens[i + 1] if i + 1 < len(tokens) else None


def match_banned(rule, tokens, path):
    """Matches qualified-name / keyword / member-call patterns."""
    out = []
    specs = rule["tokens"]
    # Index by terminal identifier for a single pass over the token stream.
    by_name = {}
    members = {}
    keywords = set()
    for spec in specs:
        if spec.get("keyword"):
            keywords.add(spec["name"])
        elif "member" in spec:
            members[spec["member"]] = spec
        else:
            parts = spec["name"].split("::")
            by_name.setdefault(parts[-1], []).append((parts[:-1], spec))
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.text in keywords:
            out.append(Violation(path, tok.line, rule["id"], rule["message"]))
            continue
        prev = tokens[i - 1] if i > 0 else None
        is_member = (
            prev is not None
            and prev.kind == "punct"
            and prev.text in (".", "->")
        )
        if tok.text in members and is_member:
            nxt = next_token(tokens, i)
            if nxt is not None and nxt.text == "(":
                out.append(
                    Violation(path, tok.line, rule["id"], rule["message"])
                )
            continue
        for quals, spec in by_name.get(tok.text, ()):
            chain, member, before = qualifier_chain(tokens, i)
            if member:
                continue
            # The written qualification must be a suffix of the banned name's
            # (empty is fine: `rand(` and `time(` match without `std::`), so
            # an unrelated `mylib::rand` stays legal.
            if chain and chain != quals[len(quals) - len(chain):]:
                continue
            # Short names that double as ordinary identifiers (`cout` as a
            # channels-out variable) only match when written qualified.
            if spec.get("require_qualified") and not chain:
                continue
            if spec.get("call"):
                nxt = next_token(tokens, i)
                if nxt is None or nxt.text != "(":
                    continue
                prev = tokens[before] if before >= 0 else None
                if (
                    prev is not None
                    and prev.kind == "id"
                    and prev.text not in EXPR_KEYWORDS
                ):
                    continue  # declaration, not a call
                first_arg = spec.get("first_arg")
                if first_arg is not None:
                    arg = next_token(tokens, i + 1)
                    if arg is None or arg.text != first_arg:
                        continue
            out.append(Violation(path, tok.line, rule["id"], rule["message"]))
            break
    return out


UNORDERED_TYPES = ("unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset")


def skip_template_args(tokens, i):
    """tokens[i] is '<'; returns index just past the matching '>'."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in (";", "{"):  # malformed / operator< — bail out
            return i
        i += 1
    return i


def unordered_names(tokens):
    """Identifiers declared in this file as unordered containers.

    Covers member/local/param declarations (``std::unordered_map<K,V> ids_``,
    ``const unordered_set<int>& s``) and one level of alias indirection
    (``using Index = std::unordered_map<...>; Index by_name;``).
    """
    names, aliases = set(), set()
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind == "id" and tok.text in UNORDERED_TYPES:
            # `using Alias = std::unordered_map<...>;` — capture the alias.
            j = i
            while j > 0 and tokens[j - 1].text in ("::", "std"):
                j -= 1
            if (
                j - 3 >= 0
                and tokens[j - 1].text == "="
                and tokens[j - 2].kind == "id"
                and tokens[j - 3].text == "using"
            ):
                aliases.add(tokens[j - 2].text)
            k = i + 1
            if k < len(tokens) and tokens[k].text == "<":
                k = skip_template_args(tokens, k)
            while k < len(tokens) and tokens[k].text in ("&", "*", "const",
                                                         "&&"):
                k += 1
            if k < len(tokens) and tokens[k].kind == "id":
                names.add(tokens[k].text)
            i = k
            continue
        i += 1
    if aliases:
        for i, tok in enumerate(tokens):
            if tok.kind == "id" and tok.text in aliases:
                prev = tokens[i - 1] if i > 0 else None
                if prev is not None and prev.text in (".", "->", "::",
                                                      "using"):
                    continue
                nxt = next_token(tokens, i)
                k = i + 1
                while k < len(tokens) and tokens[k].text in ("&", "*",
                                                             "const", "&&"):
                    k += 1
                if k < len(tokens) and tokens[k].kind == "id" and (
                    nxt is None or nxt.text != "="
                ):
                    names.add(tokens[k].text)
    return names


def match_unordered_iteration(rule, tokens, path):
    """Flags range-for over, or .begin()/.end() on, unordered containers."""
    names = unordered_names(tokens)
    if not names:
        return []
    out = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        # `tracked.begin()` / `tracked->cbegin()` etc.  Only begin-flavored
        # members: iteration always needs one, while `it != m.end()` also
        # appears in legal find() lookups.
        if tok.text in ("begin", "cbegin", "rbegin"):
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.text in (".", "->") and i >= 2:
                recv = tokens[i - 2]
                nxt = next_token(tokens, i)
                if (
                    recv.kind == "id"
                    and recv.text in names
                    and nxt is not None
                    and nxt.text == "("
                ):
                    out.append(
                        Violation(path, tok.line, rule["id"], rule["message"])
                    )
        # `for (auto& kv : tracked)` — find the top-level ':' inside the
        # for-parens ('::' is a single token, so a lone ':' is the range
        # separator) and look for a tracked name in the range expression.
        if tok.text == "for":
            nxt = next_token(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            depth, j, colon = 0, i + 1, None
            while j < len(tokens):
                t = tokens[j].text
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == ":" and depth == 1 and colon is None:
                    colon = j
                j += 1
            if colon is None:
                continue
            for k in range(colon + 1, j):
                t = tokens[k]
                prev = tokens[k - 1]
                if (
                    t.kind == "id"
                    and t.text in names
                    and prev.text not in (".", "->")
                ):
                    out.append(
                        Violation(path, tok.line, rule["id"], rule["message"])
                    )
                    break
    return out


MATCHERS = {
    "banned": match_banned,
    "unordered_iteration": match_unordered_iteration,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_file(path, scope_path, rules):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            source = f.read()
    except OSError as e:
        return [Violation(path, 0, "io-error", str(e))]
    tokens, comments = tokenize(source)
    allows, virtual_path = parse_directives(comments)
    if virtual_path is not None:
        scope_path = virtual_path
    known = {r["id"] for r in rules}

    violations = []
    for rule in rules:
        if not in_scope(rule, scope_path):
            continue
        violations.extend(MATCHERS[rule["kind"]](rule, tokens, path))

    # Apply waivers: an allow covers its own line (trailing comment) and the
    # next line (comment-above style).
    allows_by_line = {}
    for a in allows:
        allows_by_line.setdefault(a.line, []).append(a)
        allows_by_line.setdefault(a.line + 1, []).append(a)
    kept = []
    for v in violations:
        waived = False
        for a in allows_by_line.get(v.line, ()):
            if v.rule in a.rules and a.justification:
                a.used = True
                waived = True
        if not waived:
            kept.append(v)
    violations = kept

    # The escape hatch polices itself.
    for a in allows:
        if not a.justification:
            violations.append(
                Violation(
                    path, a.line, "allow-needs-justification",
                    "mhb-lint: allow(...) must carry '-- <why this is ok>'",
                )
            )
            continue
        for r in a.rules:
            if r not in known:
                violations.append(
                    Violation(
                        path, a.line, "allow-unknown-rule",
                        f"allow names unknown rule '{r}'",
                    )
                )
        if not a.used:
            violations.append(
                Violation(
                    path, a.line, "allow-unused",
                    "allow suppresses nothing on this or the next line; "
                    "remove the stale waiver",
                )
            )
    return violations


def collect_files(paths, root, config):
    exts = tuple(config.get("extensions", [".cc", ".h"]))
    if not paths:
        paths = [os.path.join(root, r) for r in config.get("roots", ["src"])]
    files = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(exts):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"mhb_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Determinism & concurrency linter (rules in "
        "tools/lint_rules.json)."
    )
    parser.add_argument("paths", nargs="*", help="files or directories "
                        "(default: the configured roots)")
    parser.add_argument("--rules", default=None,
                        help="rules JSON (default: lint_rules.json next to "
                        "this script)")
    parser.add_argument("--root", default=None,
                        help="repo root for scope paths (default: parent of "
                        "the rules file's directory)")
    args = parser.parse_args(argv)

    rules_path = args.rules or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "lint_rules.json"
    )
    try:
        with open(rules_path, "r", encoding="utf-8") as f:
            config = json.load(f)
    except (OSError, ValueError) as e:
        print(f"mhb_lint: cannot load rules: {e}", file=sys.stderr)
        return 2
    rules = config.get("rules", [])
    for rule in rules:
        if rule.get("kind") not in MATCHERS:
            print(
                f"mhb_lint: rule '{rule.get('id')}' has unknown kind "
                f"'{rule.get('kind')}'",
                file=sys.stderr,
            )
            return 2

    root = os.path.abspath(
        args.root or os.path.dirname(os.path.dirname(rules_path))
    )
    files = collect_files(args.paths, root, config)

    all_violations = []
    for path in files:
        scope_path = os.path.relpath(os.path.abspath(path), root)
        scope_path = scope_path.replace(os.sep, "/")
        all_violations.extend(lint_file(path, scope_path, rules))

    all_violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in all_violations:
        print(f"{v.path}:{v.line}: {v.rule}: {v.message}")
    if all_violations:
        print(
            f"mhb_lint: {len(all_violations)} violation(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
