// PracMHBench command-line interface.
//
//   mhbench list
//       Enumerate algorithms (with heterogeneity level), tasks and devices.
//   mhbench cost --model resnet101 --algorithm sheterofl --ratio 0.5
//                [--device jetson-nano]
//       Query the calibrated cost model for one variant.
//   mhbench plan --task cifar100 --constraint memory [--algorithm sheterofl]
//                [--clients 12] [--seed 11]
//       Print the per-client model assignment a constraint case produces.
//   mhbench run --task cifar10 --algorithm sheterofl
//               [--constraint computation] [--rounds 20] [--clients 10]
//               [--alpha 0.5] [--deadline 0] [--seed 1] [--threads 1]
//               [--threaded-gemm 0|1] [--eval-precision f32|bf16|int8]
//               [--trace out.json] [--trace-sim-clock 1]
//               [--manifest-dir results] [--profile 0|1]
//               [--checkpoint-every N] [--checkpoint-dir checkpoints]
//               [--resume checkpoints/round_000002.mhbsnap]
//               [--live-port P] [--heartbeat-every SEC]
//               [--watchdog-sec SEC] [--watchdog-abort 0|1]
//               [--det-audit path|1]
//       Run one federated experiment and print the metric panel.
//       --threads parallelizes client training and stability evaluation;
//       results are bit-identical for any thread count.
//       --threaded-gemm 1 additionally routes kernel macro-tile
//       parallelism to the same pool during serial phases (bit-identical
//       either way; no-op with --threads 1).  --eval-precision selects
//       the eval-side matmul precision (training always runs f32); the
//       kernel ISA itself follows MHB_KERNELS (see README).
//       --trace writes a Chrome-tracing JSON (open in chrome://tracing or
//       https://ui.perfetto.dev) plus a .jsonl event log next to it;
//       --trace-sim-clock 1 adds simulated-clock lanes per client.
//       --manifest-dir writes results/<run-id>/manifest.json + rounds.csv
//       + tiers.csv (per-device-tier rollups) + clients.mhbj (the bounded
//       client event journal; `tools/mhb_journal.py csv` converts it to
//       the legacy clients.csv) capturing config, seed, git revision and
//       per-round telemetry (counters, gauges, histogram quantiles).
//       --client-journal-sample R (default 1.0) journals a deterministic
//       seed-hashed fraction R of clients — the same subset at any
//       --threads (DESIGN.md §5j).
//       --profile enables the per-op profiler (profile.json in the run
//       dir); defaults to on when --manifest-dir is set.
//       --checkpoint-every N snapshots engine + algorithm + RNG + obs
//       state to --checkpoint-dir after every N-th round; --resume
//       restores one snapshot and continues — with the same config the
//       resumed run is bit-identical to the uninterrupted one (see
//       DESIGN.md §5g).
//       --live-port P serves live telemetry on http://127.0.0.1:P
//       (/metrics in Prometheus text format, /status.json, /healthz;
//       P=0 picks an ephemeral port, printed before the run starts).
//       --heartbeat-every S appends a heartbeat.jsonl line to the run's
//       manifest dir every S wall seconds (requires --manifest-dir);
//       --watchdog-sec S logs a stall when no round completes for S wall
//       seconds, and --watchdog-abort 1 turns that into a hard exit.
//       None of these can perturb results: the exporter only reads
//       round-barrier totals (DESIGN.md §5h); `tools/mhb_watch.py` polls
//       /status.json into a terminal progress view.
//       --det-audit <path|1> writes a per-round determinism ledger
//       (det_audit.jsonl): one 64-bit hash per component (RNG stream,
//       model/algorithm state bytes, counter and histogram totals) plus a
//       running chain, at every round barrier.  "1" places the ledger in
//       the --manifest-dir run directory.  `tools/mhb_bisect.py` diffs two
//       ledgers and names the first divergent round and component
//       (DESIGN.md §5k).  Read-only over engine state: attaching it leaves
//       results, manifests and journals bit-identical.
//
// Every command also accepts --log-level <silent|error|warn|info|debug|
// trace|0-5>, mirroring the MHB_LOG_LEVEL environment variable (the flag
// wins when both are given).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "bench_support/experiment.h"
#include "constraints/assignment.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/table.h"
#include "device/calibration.h"
#include "device/cost_model.h"
#include "device/ima_fleet.h"
#include "metrics/report.h"
#include "models/zoo.h"
#include "obs/det_audit.h"
#include "obs/journal.h"
#include "obs/live.h"
#include "obs/manifest.h"
#include "obs/profile.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

namespace {

using namespace mhbench;

// Minimal --key value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      MHB_CHECK(std::strncmp(argv[i], "--", 2) == 0)
          << "expected --flag, got" << argv[i];
      values_[argv[i] + 2] = argv[i + 1];
    }
    MHB_CHECK((argc - first) % 2 == 0) << "flag without value";
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetD(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int GetI(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

const char* LevelName(algorithms::HeteroLevel level) {
  switch (level) {
    case algorithms::HeteroLevel::kHomogeneous:
      return "baseline";
    case algorithms::HeteroLevel::kWidth:
      return "width";
    case algorithms::HeteroLevel::kDepth:
      return "depth";
    case algorithms::HeteroLevel::kTopology:
      return "topology";
  }
  return "?";
}

int CmdList() {
  std::puts("Algorithms:");
  AsciiTable algos({"Name", "Level"});
  for (const auto& info : algorithms::AllAlgorithms()) {
    algos.AddRow({info.name, LevelName(info.level)});
  }
  std::fputs(algos.Render().c_str(), stdout);

  std::puts("Tasks:");
  AsciiTable tasks({"Name", "Classes", "Primary model"});
  for (const auto& name : models::AllTaskNames()) {
    tasks.AddRow({name, std::to_string(models::TaskNumClasses(name)),
                  models::MakeTaskModels(name).primary->name()});
  }
  std::fputs(tasks.Render().c_str(), stdout);

  std::puts("Devices: jetson-orin-nx, jetson-tx2-nx, jetson-nano,");
  std::puts("         raspberry-pi-4b (see `mhbench cost --device ...`)");
  std::puts("Constraints: none, computation, communication, memory,");
  std::puts("             comm+mem, comp+comm+mem");
  return 0;
}

int CmdCost(const Args& args) {
  const std::string model = args.Get("model", "resnet101");
  const std::string algorithm = args.Get("algorithm", "sheterofl");
  const double ratio = args.GetD("ratio", 1.0);
  const std::string device_name = args.Get("device", "jetson-nano");

  device::DeviceProfile dev;
  dev.name = device_name;
  dev.gflops = device::DeviceGflops(device_name);
  dev.bandwidth_mbps = args.GetD("bandwidth", 20.0);

  device::CostModel cm(device::PaperDesc(model));
  const auto cost = cm.Cost(algorithm, ratio, dev);
  std::printf("%s x%.2f under %s on %s:\n", model.c_str(), ratio,
              algorithm.c_str(), device_name.c_str());
  std::printf("  parameters : %.2f M\n", cost.params_m);
  std::printf("  fwd GFLOPs : %.3f per sample\n", cost.gflops_fwd);
  std::printf("  train time : %.1f s per round\n", cost.train_time_s);
  std::printf("  memory     : %.0f MB\n", cost.memory_mb);
  std::printf("  comm       : %.1f MB (%.1f s at %.0f Mbps)\n", cost.comm_mb,
              cost.comm_time_s, dev.bandwidth_mbps);
  return 0;
}

int CmdPlan(const Args& args) {
  const std::string task = args.Get("task", "cifar100");
  const std::string constraint = args.Get("constraint", "computation");
  const std::string algorithm = args.Get("algorithm", "sheterofl");

  device::FleetConfig fcfg;
  fcfg.num_clients = args.GetI("clients", 12);
  fcfg.seed = static_cast<std::uint64_t>(args.GetI("seed", 11));
  const device::Fleet fleet = device::SampleFleet(fcfg);

  // "comp" only occurs in computation, "comm" only in communication, and
  // "mem" only in memory, so substring matching covers the combined names.
  constraints::ConstraintFlags flags;
  flags.computation = constraint.find("comp") != std::string::npos;
  flags.communication = constraint.find("comm") != std::string::npos;
  flags.memory = constraint.find("mem") != std::string::npos;
  MHB_CHECK(flags.computation || flags.communication || flags.memory)
      << "unknown constraint" << constraint;

  const auto built =
      constraints::BuildConstrained(algorithm, task, fleet, flags);
  std::printf("%s / %s / %s (deadline %.1f s)\n", task.c_str(),
              constraint.c_str(), algorithm.c_str(),
              built.compute_deadline_s);
  AsciiTable table({"Client", "GFLOP/s", "Mem budget", "Capacity", "Arch",
                    "Compute s", "Comm s"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto& a = built.assignments[i];
    table.AddRow({std::to_string(i), AsciiTable::Num(fleet[i].gflops, 2),
                  AsciiTable::Num(fleet[i].memory_mb, 0),
                  "x" + AsciiTable::Num(a.capacity, 2),
                  std::to_string(a.arch_index),
                  AsciiTable::Num(a.system.compute_time_s, 1),
                  AsciiTable::Num(a.system.comm_time_s, 1)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}

int CmdRun(const Args& args) {
  bench_support::SuiteOptions options;
  options.task = args.Get("task", "cifar10");
  options.constraint = args.Get("constraint", "computation");
  options.dirichlet_alpha = args.GetD("alpha", 0.0);
  options.round_deadline_s = args.GetD("deadline", 0.0);
  options.preset.rounds = args.GetI("rounds", options.preset.rounds);
  options.preset.clients = args.GetI("clients", options.preset.clients);
  options.preset.seed =
      static_cast<std::uint64_t>(args.GetI("seed", 1));
  options.preset.threads = args.GetI("threads", options.preset.threads);
  options.preset.threaded_gemm =
      args.GetI("threaded-gemm", options.preset.threaded_gemm);
  options.preset.eval_precision =
      args.Get("eval-precision", options.preset.eval_precision);

  options.checkpoint_every = args.GetI("checkpoint-every", 0);
  options.checkpoint_dir = args.Get("checkpoint-dir", "checkpoints");
  options.resume_path = args.Get("resume", "");

  const std::string algorithm = args.Get("algorithm", "sheterofl");
  const std::string trace_path = args.Get("trace", "");
  const std::string manifest_dir = args.Get("manifest-dir", "");
  const bool profile = args.GetI("profile", manifest_dir.empty() ? 0 : 1) != 0;

  // Live telemetry (obs/live.h, DESIGN.md §5h).
  const int live_port = args.GetI("live-port", -1);
  double heartbeat_every = args.GetD("heartbeat-every", 0.0);
  const double watchdog_sec = args.GetD("watchdog-sec", 0.0);
  const bool watchdog_abort = args.GetI("watchdog-abort", 0) != 0;
  const bool live_enabled =
      live_port >= 0 || heartbeat_every > 0 || watchdog_sec > 0;
  if (heartbeat_every > 0 && manifest_dir.empty()) {
    MHB_LOG_WARN << "--heartbeat-every needs --manifest-dir for the "
                    "heartbeat.jsonl destination; disabling heartbeat";
    heartbeat_every = 0.0;
  }

  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::Profiler> profiler;
  if (!trace_path.empty()) tracer = std::make_unique<obs::Tracer>();
  if (!trace_path.empty() || !manifest_dir.empty() ||
      options.checkpoint_every > 0 || live_enabled) {
    // Checkpointing keeps a registry even without --manifest-dir so
    // snapshots carry the obs section (resumed manifests then report
    // whole-campaign totals); live telemetry needs one as the snapshot
    // source for /metrics and /status.json.
    registry = std::make_unique<obs::Registry>();
  }
  if (profile) profiler = std::make_unique<obs::Profiler>();
  options.obs.tracer = tracer.get();
  options.obs.registry = registry.get();
  options.obs.profiler = profiler.get();
  options.obs.sim_spans = args.GetI("trace-sim-clock", 0) != 0;
  MHB_LOG_INFO << "obs config: trace="
               << (tracer != nullptr ? trace_path : "off")
               << " manifest_dir="
               << (manifest_dir.empty() ? "off" : manifest_dir)
               << " profiler=" << (profile ? "on" : "off")
               << " sim_spans=" << (options.obs.sim_spans ? "on" : "off")
               << " live=" << (live_enabled ? "on" : "off");

  // The run directory is created up front (not only at exit) so the
  // heartbeat stream and the incrementally-rewritten rounds.csv land in
  // the same place WriteRunManifest finalizes at the end.
  const std::string run_id = options.task + "-" + options.constraint + "-" +
                             algorithm + "-seed" +
                             std::to_string(options.preset.seed);
  std::string run_dir;
  if (!manifest_dir.empty()) {
    run_dir = (std::filesystem::path(manifest_dir) /
               obs::SanitizeRunId(run_id))
                  .string();
    std::error_code ec;
    std::filesystem::create_directories(run_dir, ec);
    MHB_CHECK(!ec) << "cannot create run dir" << run_dir;
    if (registry != nullptr) {
      // Stream rounds.csv + tiers.csv per completed round: killed runs keep
      // partial per-round artifacts.  The end-of-run manifest rewrite
      // produces byte-identical final files.
      obs::Registry* reg = registry.get();
      registry->SetRoundSink(
          [reg, run_dir](const obs::Registry::RoundRow& /*row*/) {
            obs::WriteRoundsCsv(run_dir, *reg);
            obs::WriteTiersCsv(run_dir, *reg);
          });
    }
  }

  // Bounded-memory client event journal (obs/journal.h): the registry
  // drains each round's client rows into clients.mhbj at the barrier
  // instead of retaining them for the whole run.
  std::unique_ptr<obs::ClientJournalWriter> journal;
  const double journal_sample = args.GetD("client-journal-sample", 1.0);
  if (!run_dir.empty() && registry != nullptr) {
    obs::ClientJournalWriter::Options jopts;
    jopts.sample_rate = journal_sample;
    jopts.sample_seed = options.preset.seed;
    journal = std::make_unique<obs::ClientJournalWriter>(
        run_dir + "/clients.mhbj", jopts);
    obs::ClientJournalWriter* jw = journal.get();
    registry->SetClientRowSink(
        [jw](std::vector<obs::Registry::ClientRow>&& rows) {
          jw->Append(rows);
        });
  }

  // Determinism divergence auditor (obs/det_audit.h, DESIGN.md §5k).
  // "--det-audit 1" resolves to the run directory; any other value is the
  // ledger path itself.
  std::unique_ptr<obs::DetAuditor> det_audit;
  std::string det_audit_path = args.Get("det-audit", "");
  if (det_audit_path == "1" || det_audit_path == "true") {
    if (run_dir.empty()) {
      MHB_LOG_WARN << "--det-audit 1 needs --manifest-dir for the "
                      "det_audit.jsonl destination; disabling audit";
      det_audit_path.clear();
    } else {
      det_audit_path = run_dir + "/det_audit.jsonl";
    }
  } else if (det_audit_path == "0" || det_audit_path == "false") {
    det_audit_path.clear();
  }
  if (!det_audit_path.empty()) {
    det_audit = std::make_unique<obs::DetAuditor>(det_audit_path);
    det_audit->WriteHeader(algorithm, options.preset.seed,
                           options.preset.rounds, options.preset.threads);
    options.obs.det_audit = det_audit.get();
    MHB_LOG_INFO << "det-audit ledger: " << det_audit_path;
  }

  std::unique_ptr<obs::LiveExporter> live;
  if (live_enabled) {
    obs::LiveConfig lcfg;
    lcfg.http_port = live_port;
    lcfg.heartbeat_every_s = heartbeat_every;
    if (heartbeat_every > 0) {
      lcfg.heartbeat_path = run_dir + "/heartbeat.jsonl";
    }
    lcfg.watchdog_stall_s = watchdog_sec;
    lcfg.watchdog_abort = watchdog_abort;
    lcfg.run_id = run_id;
    lcfg.rounds_total = options.preset.rounds;
    live = std::make_unique<obs::LiveExporter>(lcfg, registry.get());
    options.obs.live = live.get();
    if (live->http_port() >= 0) {
      // Printed (and flushed) before the run starts so pollers reading a
      // redirected log can discover an ephemeral port.
      std::printf("[live telemetry on http://127.0.0.1:%d]\n",
                  live->http_port());
      std::fflush(stdout);
    }
  }

  std::printf("running %s on %s under %s-limited MHFL (%d rounds, %d "
              "clients)...\n",
              algorithm.c_str(), options.task.c_str(),
              options.constraint.c_str(), options.preset.rounds,
              options.preset.clients);
  std::fflush(stdout);

  const auto bundles = bench_support::RunSuite({algorithm}, options);
  if (live != nullptr) {
    // Stop watchdog/heartbeat/HTTP before finalizing artifacts: the final
    // heartbeat line is written here, and nothing may poll half-written
    // files while the manifest lands.
    live->Stop();
  }
  if (registry != nullptr) {
    registry->SetRoundSink(nullptr);
    registry->SetClientRowSink(nullptr);
  }
  if (journal != nullptr) {
    journal->Close();
    MHB_LOG_INFO << "client journal: " << journal->blocks_written()
                 << " blocks, " << journal->records_written()
                 << " records, peak block buffer "
                 << journal->peak_block_bytes() << " bytes";
  }
  std::fputs(metrics::RenderMetricPanel(
                 options.constraint + " / " + options.task, bundles)
                 .c_str(),
             stdout);
  std::fputs(metrics::RenderCurves("accuracy curve", bundles).c_str(),
             stdout);

  if (tracer != nullptr) {
    tracer->WriteChromeJson(trace_path);
    // Event log next to the Chrome trace: out.json -> out.jsonl.
    std::string jsonl = trace_path;
    const std::string suffix = ".json";
    if (jsonl.size() >= suffix.size() &&
        jsonl.compare(jsonl.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      jsonl += "l";
    } else {
      jsonl += ".jsonl";
    }
    tracer->WriteJsonl(jsonl);
    std::printf("[trace written to %s + %s]\n", trace_path.c_str(),
                jsonl.c_str());
  }
  if (!manifest_dir.empty()) {
    obs::RunManifest m;
    m.run_id = run_id;
    m.tool = "mhbench run";
    m.git_describe = obs::GitDescribe();
    m.created_utc = obs::IsoTimestampUtc();
    m.seed = options.preset.seed;
    m.threads = options.preset.threads;
    m.config = {
        {"task", options.task},
        {"constraint", options.constraint},
        {"algorithm", algorithm},
        {"rounds", std::to_string(options.preset.rounds)},
        {"clients", std::to_string(options.preset.clients)},
        {"dirichlet_alpha", std::to_string(options.dirichlet_alpha)},
        {"round_deadline_s", std::to_string(options.round_deadline_s)},
        // Kernel provenance: which micro-kernel ISA dispatch picked at
        // startup and how eval-side matmuls were run (DESIGN.md §5i).
        {"kernel_backend", kernels::KernelBackendName()},
        {"eval_precision", options.preset.eval_precision},
        {"threaded_gemm",
         std::to_string(options.preset.threaded_gemm != 0 ? 1 : 0)},
        {"client_journal_sample", std::to_string(journal_sample)},
    };
    for (const auto& b : bundles) {
      m.metrics.emplace_back(b.algorithm + ".global_accuracy",
                             b.global_accuracy);
      m.metrics.emplace_back(b.algorithm + ".stability_variance",
                             b.stability_variance);
      m.metrics.emplace_back(b.algorithm + ".total_sim_time_s",
                             b.total_sim_time_s);
      m.metrics.emplace_back(b.algorithm + ".straggler_drop_rate",
                             metrics::StragglerDropRate(b));
    }
    const std::string run_dir =
        obs::WriteRunManifest(manifest_dir, m, registry.get(),
                              profiler.get());
    std::printf("[manifest written to %s]\n", run_dir.c_str());
  }
  return 0;
}

int Usage() {
  std::puts("usage: mhbench <list|cost|plan|run> [--flag value ...]");
  std::puts("see the header of tools/mhbench.cc for per-command flags");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv, 2);
    const std::string log_level = args.Get("log-level", "");
    if (!log_level.empty()) {
      mhbench::SetLogLevel(
          mhbench::ParseLogLevel(log_level, mhbench::GetLogLevel()));
    }
    if (cmd == "list") return CmdList();
    if (cmd == "cost") return CmdCost(args);
    if (cmd == "plan") return CmdPlan(args);
    if (cmd == "run") return CmdRun(args);
  } catch (const mhbench::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
