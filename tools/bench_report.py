#!/usr/bin/env python3
"""Distills bench_micro's google-benchmark JSON into BENCH_kernels.json.

Usage: bench_report.py [--allow-debug] <raw-benchmark.json> <out.json>

Pairs each fast kernel benchmark (BM_Matmul/128, BM_Conv2dForward, ...) with
its *Naive twin, each BM_MatmulThreaded/n/T entry with the serial
BM_Matmul/n, and each BM_MatmulBf16/Int8 entry with its f32 twin.
Per-repetition samples (run with --benchmark_repetitions=N and WITHOUT
--benchmark_report_aggregates_only) give real p50/p95 wall times rather than
a median-of-3; speedup ratios come from the p50s.  The context block embeds
`git describe` and the kernel backend (the runtime-dispatch choice bench_micro
records via AddCustomContext, falling back to MHB_KERNELS) so
tools/mhb_diff.py can refuse to compare apples to oranges.  Acceptance
targets from the kernel-layer issues (>= 3x on BM_Matmul/128, >= 2x on
BM_Conv2dForward, >= 2.5x at 4 threads on BM_MatmulThreaded/256/4) are
annotated so the committed file documents whether the reference machine met
them.  Threaded entries whose thread count exceeds the machine's CPUs are
flagged `threads_exceed_cpus` — the speedup is physically unattainable
there, and mhb_diff.py exempts such entries from the speedup gate.

A raw file produced by a *debug* bench_micro build is refused (exit 3)
unless --allow-debug is given: unoptimized-kernel timings would poison a
committed baseline.  The build type of our own translation units is what
matters, so bench_micro's `mhb_build_type` context entry (stamped from
NDEBUG) takes precedence; the benchmark *library's* `library_build_type`
is only the fallback signal for raw files that predate the stamp — a
debug libbenchmark adds timing-loop overhead (and is recorded in the
report context) but does not deoptimize the kernels under test.
"""
import json
import os
import re
import subprocess
import sys

TARGETS = {
    "BM_Matmul/128": 3.0,
    "BM_Conv2dForward": 2.0,
    "BM_MatmulThreaded/256/4": 2.5,
}

THREADED_RE = re.compile(r"^BM_MatmulThreaded/(\d+)/(\d+)$")
PRECISION_RE = re.compile(r"^BM_Matmul(Bf16|Int8)/(\d+)$")


def percentile(sorted_samples, q):
    """Linear-interpolated quantile of a pre-sorted, non-empty list."""
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    pos = q * (len(sorted_samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac


def git_describe():
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def main() -> int:
    argv = sys.argv[1:]
    allow_debug = "--allow-debug" in argv
    argv = [a for a in argv if a != "--allow-debug"]
    if len(argv) != 2:
        print(__doc__.splitlines()[2].strip(), file=sys.stderr)
        return 2
    raw_path, out_path = argv
    with open(raw_path) as f:
        raw = json.load(f)

    lib_build_type = raw["context"].get("library_build_type")
    build_type = raw["context"].get("mhb_build_type", lib_build_type)
    if build_type == "debug" and not allow_debug:
        print(
            "bench_report: raw file comes from a debug build; refusing to "
            "write a baseline from debug timings "
            "(pass --allow-debug to override)",
            file=sys.stderr,
        )
        return 3

    # One sample per repetition.  Aggregate rows (mean/median/stddev, present
    # when google-benchmark emits them alongside repetitions) are skipped;
    # a run without repetitions yields a single "iteration" row per name.
    samples = {}
    items_per_second = {}
    for b in raw["benchmarks"]:
        if b.get("run_type") == "aggregate" or "aggregate_name" in b:
            continue
        name = b["run_name"]
        samples.setdefault(name, []).append(b["real_time"])
        if b.get("items_per_second"):
            items_per_second.setdefault(name, []).append(
                b["items_per_second"])

    stats = {}
    repetitions = 0
    for name, xs in samples.items():
        xs.sort()
        repetitions = max(repetitions, len(xs))
        gflops_samples = sorted(items_per_second.get(name, []))
        gflops = (
            percentile(gflops_samples, 0.50) / 1e9 if gflops_samples else None
        )
        stats[name] = {
            "wall_ns": round(percentile(xs, 0.50)),
            "p95_wall_ns": round(percentile(xs, 0.95)),
            "gflops": round(gflops, 2) if gflops else None,
        }

    num_cpus = raw["context"].get("num_cpus")
    backend = raw["context"].get(
        "mhb_kernel_backend", os.environ.get("MHB_KERNELS", "fast"))
    report = {
        "context": {
            "host": raw["context"].get("host_name"),
            "num_cpus": num_cpus,
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            "date": raw["context"].get("date"),
            "build_type": build_type,
            "benchmark_lib_build_type": lib_build_type,
            "load_avg": raw["context"].get("load_avg"),
            "git_describe": git_describe(),
            "kernel_backend": backend,
            "repetitions": repetitions,
            "statistic": "p50 (p95 recorded per benchmark)",
        },
        "kernels": {},
    }
    for name, fast in sorted(stats.items()):
        base = name.replace("BM_", "", 1)
        if "Naive" in name:
            continue
        entry = {"fast": fast}
        threaded = THREADED_RE.match(name)
        precision = PRECISION_RE.match(name)
        if threaded:
            threads = int(threaded.group(2))
            entry["threads"] = threads
            serial = stats.get("BM_Matmul/" + threaded.group(1))
            if serial is not None:
                entry["serial"] = serial
                entry["speedup"] = round(
                    serial["wall_ns"] / fast["wall_ns"], 2)
            if num_cpus is not None and threads > num_cpus:
                # T logical threads on fewer CPUs: the parallel speedup is
                # physically unattainable, so the gate is informational.
                entry["threads_exceed_cpus"] = True
        elif precision:
            f32 = stats.get("BM_Matmul/" + precision.group(2))
            if f32 is not None:
                entry["f32"] = f32
                entry["speedup"] = round(f32["wall_ns"] / fast["wall_ns"], 2)
        else:
            naive_name = (
                name.replace("/", "Naive/", 1)
                if "/" in name
                else name + "Naive"
            )
            naive = stats.get(naive_name)
            if naive is not None:
                entry["naive"] = naive
                entry["speedup"] = round(
                    naive["wall_ns"] / fast["wall_ns"], 2)
        if name in TARGETS:
            entry["target_speedup"] = TARGETS[name]
            if "speedup" in entry:
                entry["meets_target"] = entry["speedup"] >= TARGETS[name]
        report["kernels"][base] = entry

    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for base, entry in report["kernels"].items():
        ratio = entry.get("speedup")
        against = (
            "serial" if "serial" in entry
            else "f32" if "f32" in entry
            else "naive"
        )
        mark = ""
        if "target_speedup" in entry:
            mark = " (target %.1fx: %s)" % (
                entry["target_speedup"],
                "met" if entry.get("meets_target") else "MISSED",
            )
        if entry.get("threads_exceed_cpus"):
            mark += " [threads exceed CPUs]"
        if ratio is not None:
            print(f"bench_report: {base}: {ratio}x vs {against}{mark}")
    print(f"bench_report: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
