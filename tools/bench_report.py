#!/usr/bin/env python3
"""Distills bench_micro's google-benchmark JSON into BENCH_kernels.json.

Usage: bench_report.py <raw-benchmark.json> <out.json>

Pairs each fast kernel benchmark (BM_Matmul/128, BM_Conv2dForward, ...) with
its *Naive twin, records median wall time and GFLOP/s (where the benchmark
reports items_per_second), and computes the fast/naive speedup ratio from the
median timings.  The acceptance targets from the kernel-layer issue
(>= 3x on BM_Matmul/128, >= 2x on BM_Conv2dForward) are annotated so the
committed file documents whether the reference machine met them.
"""
import json
import sys

TARGETS = {"BM_Matmul/128": 3.0, "BM_Conv2dForward": 2.0}


def main() -> int:
    raw_path, out_path = sys.argv[1], sys.argv[2]
    with open(raw_path) as f:
        raw = json.load(f)

    medians = {}
    for b in raw["benchmarks"]:
        if b.get("aggregate_name") != "median":
            continue
        name = b["run_name"]
        gflops = b.get("items_per_second", 0.0) / 1e9
        medians[name] = {
            "wall_ns": round(b["real_time"]),
            "gflops": round(gflops, 2) if gflops else None,
        }

    report = {
        "context": {
            "host": raw["context"].get("host_name"),
            "num_cpus": raw["context"].get("num_cpus"),
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            "date": raw["context"].get("date"),
            "benchmark_lib_build_type": raw["context"].get(
                "library_build_type"),
            "load_avg": raw["context"].get("load_avg"),
            "repetitions": 3,
            "statistic": "median",
        },
        "kernels": {},
    }
    for name, fast in sorted(medians.items()):
        base = name.replace("BM_", "", 1)
        if "Naive" in name:
            continue
        naive_name = (
            name.replace("/", "Naive/", 1)
            if "/" in name
            else name + "Naive"
        )
        entry = {"fast": fast}
        naive = medians.get(naive_name)
        if naive is not None:
            entry["naive"] = naive
            entry["speedup"] = round(naive["wall_ns"] / fast["wall_ns"], 2)
        if name in TARGETS:
            entry["target_speedup"] = TARGETS[name]
            if "speedup" in entry:
                entry["meets_target"] = entry["speedup"] >= TARGETS[name]
        report["kernels"][base] = entry

    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for base, entry in report["kernels"].items():
        ratio = entry.get("speedup")
        mark = ""
        if "target_speedup" in entry:
            mark = " (target %.1fx: %s)" % (
                entry["target_speedup"],
                "met" if entry.get("meets_target") else "MISSED",
            )
        if ratio is not None:
            print(f"bench_report: {base}: {ratio}x vs naive{mark}")
    print(f"bench_report: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
