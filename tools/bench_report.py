#!/usr/bin/env python3
"""Distills bench_micro's google-benchmark JSON into BENCH_kernels.json.

Usage: bench_report.py <raw-benchmark.json> <out.json>

Pairs each fast kernel benchmark (BM_Matmul/128, BM_Conv2dForward, ...) with
its *Naive twin.  Per-repetition samples (run with --benchmark_repetitions=N
and WITHOUT --benchmark_report_aggregates_only) give real p50/p95 wall times
rather than a median-of-3; speedup ratios come from the p50s.  The context
block embeds `git describe` and the kernel backend (MHB_KERNELS) so
tools/mhb_diff.py can refuse to compare apples to oranges.  The acceptance
targets from the kernel-layer issue (>= 3x on BM_Matmul/128, >= 2x on
BM_Conv2dForward) are annotated so the committed file documents whether the
reference machine met them.
"""
import json
import os
import subprocess
import sys

TARGETS = {"BM_Matmul/128": 3.0, "BM_Conv2dForward": 2.0}


def percentile(sorted_samples, q):
    """Linear-interpolated quantile of a pre-sorted, non-empty list."""
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    pos = q * (len(sorted_samples) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_samples) - 1)
    frac = pos - lo
    return sorted_samples[lo] * (1 - frac) + sorted_samples[hi] * frac


def git_describe():
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def main() -> int:
    raw_path, out_path = sys.argv[1], sys.argv[2]
    with open(raw_path) as f:
        raw = json.load(f)

    # One sample per repetition.  Aggregate rows (mean/median/stddev, present
    # when google-benchmark emits them alongside repetitions) are skipped;
    # a run without repetitions yields a single "iteration" row per name.
    samples = {}
    items_per_second = {}
    for b in raw["benchmarks"]:
        if b.get("run_type") == "aggregate" or "aggregate_name" in b:
            continue
        name = b["run_name"]
        samples.setdefault(name, []).append(b["real_time"])
        if b.get("items_per_second"):
            items_per_second.setdefault(name, []).append(
                b["items_per_second"])

    stats = {}
    repetitions = 0
    for name, xs in samples.items():
        xs.sort()
        repetitions = max(repetitions, len(xs))
        gflops_samples = sorted(items_per_second.get(name, []))
        gflops = (
            percentile(gflops_samples, 0.50) / 1e9 if gflops_samples else None
        )
        stats[name] = {
            "wall_ns": round(percentile(xs, 0.50)),
            "p95_wall_ns": round(percentile(xs, 0.95)),
            "gflops": round(gflops, 2) if gflops else None,
        }

    report = {
        "context": {
            "host": raw["context"].get("host_name"),
            "num_cpus": raw["context"].get("num_cpus"),
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            "date": raw["context"].get("date"),
            "benchmark_lib_build_type": raw["context"].get(
                "library_build_type"),
            "load_avg": raw["context"].get("load_avg"),
            "git_describe": git_describe(),
            "kernel_backend": os.environ.get("MHB_KERNELS", "fast"),
            "repetitions": repetitions,
            "statistic": "p50 (p95 recorded per benchmark)",
        },
        "kernels": {},
    }
    for name, fast in sorted(stats.items()):
        base = name.replace("BM_", "", 1)
        if "Naive" in name:
            continue
        naive_name = (
            name.replace("/", "Naive/", 1)
            if "/" in name
            else name + "Naive"
        )
        entry = {"fast": fast}
        naive = stats.get(naive_name)
        if naive is not None:
            entry["naive"] = naive
            entry["speedup"] = round(naive["wall_ns"] / fast["wall_ns"], 2)
        if name in TARGETS:
            entry["target_speedup"] = TARGETS[name]
            if "speedup" in entry:
                entry["meets_target"] = entry["speedup"] >= TARGETS[name]
        report["kernels"][base] = entry

    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for base, entry in report["kernels"].items():
        ratio = entry.get("speedup")
        mark = ""
        if "target_speedup" in entry:
            mark = " (target %.1fx: %s)" % (
                entry["target_speedup"],
                "met" if entry.get("meets_target") else "MISSED",
            )
        if ratio is not None:
            print(f"bench_report: {base}: {ratio}x vs naive{mark}")
    print(f"bench_report: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
