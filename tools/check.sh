#!/usr/bin/env bash
# Full verification: build + ctest in the plain configuration, then again
# under ThreadSanitizer (MHBENCH_SANITIZE=thread) to race-check the parallel
# round executor.  Run from anywhere; builds live in build/ and build-tsan/.
#
#   tools/check.sh           # plain + tsan
#   tools/check.sh --plain   # plain only
#   tools/check.sh --tsan    # tsan only
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

case "$mode" in
  all|--all)
    run_suite "$repo/build"
    run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread
    ;;
  --plain) run_suite "$repo/build" ;;
  --tsan)  run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread ;;
  *)
    echo "usage: tools/check.sh [--plain|--tsan]" >&2
    exit 2
    ;;
esac

echo "check.sh: all suites passed"
