#!/usr/bin/env bash
# Full verification: build + ctest in the plain configuration (plus an
# observability smoke run that emits and schema-checks a trace + manifest),
# then again under ThreadSanitizer (MHBENCH_SANITIZE=thread) to race-check
# the parallel round executor.  Run from anywhere; builds live in build/
# and build-tsan/.
#
#   tools/check.sh           # plain + tsan
#   tools/check.sh --plain   # plain only
#   tools/check.sh --tsan    # tsan only
#   tools/check.sh --release # Release (-O3) build + ctest
#   tools/check.sh --bench   # Release build + kernel bench smoke
#                            #   (writes BENCH_kernels.json)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

# End-to-end telemetry smoke: a tiny mhbench run that writes a Chrome trace
# plus a run manifest, then schema-checks both (valid JSON, the event/field
# shapes Perfetto and the manifest readers rely on).  Needs python3; skipped
# with a notice when it is unavailable.
smoke_obs() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping telemetry smoke"
    return 0
  fi
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  MHB_TRAIN=160 MHB_TEST=80 "$build_dir/tools/mhbench" run \
    --task cifar10 --algorithm sheterofl --rounds 2 --clients 4 \
    --threads 2 --trace "$out/trace.json" --trace-sim-clock 1 \
    --manifest-dir "$out/results" >/dev/null
  python3 - "$out" <<'PY'
import json, pathlib, sys
out = pathlib.Path(sys.argv[1])

events = json.loads((out / "trace.json").read_text())
assert isinstance(events, list) and events, "trace.json: empty event array"
names = set()
for e in events:
    assert e["ph"] in ("X", "M"), f"unexpected phase {e['ph']!r}"
    assert isinstance(e["pid"], int)
    if e["ph"] == "X":
        assert isinstance(e["tid"], int)
        assert e["ts"] >= 0 and e["dur"] >= 0
        names.add(e["name"])
for required in ("round", "dispatch", "client", "merge"):
    assert required in names, f"trace.json: no {required!r} span"
assert {e["pid"] for e in events} >= {1, 2}, "missing wall or sim track"

for line in (out / "trace.jsonl").read_text().splitlines():
    json.loads(line)

runs = list((out / "results").iterdir())
assert len(runs) == 1, f"expected one run dir, got {runs}"
manifest = json.loads((runs[0] / "manifest.json").read_text())
for key in ("run_id", "seed", "threads", "config", "metrics", "counters"):
    assert key in manifest, f"manifest.json: missing {key!r}"
assert manifest["counters"]["clients_trained"] > 0

rounds = (runs[0] / "rounds.csv").read_text().splitlines()
assert rounds[0].startswith("run,round,"), "rounds.csv: bad header"
assert len(rounds) == 1 + manifest["rounds"], "rounds.csv: row count"
print("check.sh: telemetry smoke passed")
PY
}

# Kernel benchmark smoke: builds Release, runs the GEMM/conv micro-benchmarks
# through both backends, and distills the raw google-benchmark output into
# BENCH_kernels.json (GFLOP/s per shape plus fast/naive speedup ratios).
# Ratios are reported, not asserted — shared CI machines are too noisy for a
# hard perf gate; the committed BENCH_kernels.json records the reference run.
smoke_bench() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping kernel bench smoke"
    return 0
  fi
  local raw
  raw="$(mktemp)"
  trap 'rm -f "$raw"' RETURN
  "$build_dir/bench/bench_micro" \
    --benchmark_filter='BM_Matmul|BM_Conv2d' \
    --benchmark_min_time=0.3 --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$raw" --benchmark_out_format=json >/dev/null
  python3 "$repo/tools/bench_report.py" "$raw" "$repo/BENCH_kernels.json"
}

case "$mode" in
  all|--all)
    run_suite "$repo/build"
    smoke_obs "$repo/build"
    run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread
    ;;
  --plain)
    run_suite "$repo/build"
    smoke_obs "$repo/build"
    ;;
  --tsan)  run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread ;;
  --release) run_suite "$repo/build-release" -DCMAKE_BUILD_TYPE=Release ;;
  --bench)
    run_suite "$repo/build-release" -DCMAKE_BUILD_TYPE=Release
    smoke_bench "$repo/build-release"
    ;;
  *)
    echo "usage: tools/check.sh [--plain|--tsan|--release|--bench]" >&2
    exit 2
    ;;
esac

echo "check.sh: all suites passed"
