#!/usr/bin/env bash
# Full verification: static analysis (mhb_lint + its fixture suite), then
# build + ctest in the plain configuration (plus an observability smoke run
# that emits and schema-checks a trace + manifest + tiers.csv, validates
# and CSV-converts the client event journal, and indexes two runs with
# mhb_report.py; a checkpoint/resume smoke that mhb_diffs a resumed run
# against an uninterrupted one; and a live telemetry smoke that polls
# /metrics + /status.json + /healthz while a run trains, byte-compares the
# client journals, and mhb_diffs exporter-on against exporter-off; and a
# determinism-audit smoke that bisects 1-thread vs 2-thread det-audit
# ledgers, exercises the injected-divergence seam, and asserts the auditor
# itself leaves manifests and journals bit-identical), then again under
# ThreadSanitizer (MHBENCH_SANITIZE=thread) to race-check the parallel
# round executor and the exporter.  Run from anywhere; builds live in
# build*/ siblings.
#
#   tools/check.sh           # lint + plain + tsan
#   tools/check.sh --lint    # mhb_lint fixtures + clean tree scan (no build)
#   tools/check.sh --plain   # plain only
#   tools/check.sh --tsan    # tsan only
#   tools/check.sh --asan    # AddressSanitizer build + ctest
#   tools/check.sh --ubsan   # UBSan build + ctest (recover disabled)
#   tools/check.sh --asan-ubsan      # combined address,undefined build
#   tools/check.sh --wthread-safety  # clang -Werror=thread-safety compile
#                            #   (skipped with a notice when clang is absent)
#   tools/check.sh --release # Release (-O3) build + ctest
#   tools/check.sh --bench   # Release build + kernel bench smoke (gates the
#                            #   fresh report against BENCH_kernels.json with
#                            #   mhb_diff, then refreshes it) + obs artifacts
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
mode="${1:-all}"

run_suite() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo" "$@"
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

# Determinism/concurrency static analysis: the linter's own fixture tests
# (exact rule IDs, file:line anchors, exit codes — the same suite ctest
# runs), which end with a clean scan of the repository tree.  No build.
run_lint() {
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, cannot run mhb_lint" >&2
    return 1
  fi
  python3 "$repo/tests/lint/lint_test.py"
  echo "check.sh: mhb_lint passed"
}

# Compile with clang's thread-safety analysis promoted to errors; checks the
# MHB_GUARDED_BY/MHB_REQUIRES contracts on core::Mutex-protected state
# (DESIGN.md §5f).  Compile-only: the plain/tsan suites already execute the
# tests, this leg only needs the analysis verdict.
run_wthread_safety() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "check.sh: clang++ not found, skipping -Wthread-safety leg"
    return 0
  fi
  cmake -B "$repo/build-clang" -S "$repo" \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
  cmake --build "$repo/build-clang" -j
  echo "check.sh: clang -Werror=thread-safety build passed"
}

# End-to-end telemetry smoke: a tiny mhbench run that writes a Chrome trace
# plus a run manifest, then schema-checks both (valid JSON, the event/field
# shapes Perfetto and the manifest readers rely on).  Needs python3; skipped
# with a notice when it is unavailable.
smoke_obs() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping telemetry smoke"
    return 0
  fi
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  MHB_TRAIN=160 MHB_TEST=80 "$build_dir/tools/mhbench" run \
    --task cifar10 --algorithm sheterofl --rounds 2 --clients 4 \
    --threads 2 --trace "$out/trace.json" --trace-sim-clock 1 \
    --manifest-dir "$out/results" >/dev/null
  python3 - "$out" <<'PY'
import json, pathlib, sys
out = pathlib.Path(sys.argv[1])

events = json.loads((out / "trace.json").read_text())
assert isinstance(events, list) and events, "trace.json: empty event array"
names = set()
for e in events:
    assert e["ph"] in ("X", "M"), f"unexpected phase {e['ph']!r}"
    assert isinstance(e["pid"], int)
    if e["ph"] == "X":
        assert isinstance(e["tid"], int)
        assert e["ts"] >= 0 and e["dur"] >= 0
        names.add(e["name"])
for required in ("round", "dispatch", "client", "merge"):
    assert required in names, f"trace.json: no {required!r} span"
assert {e["pid"] for e in events} >= {1, 2}, "missing wall or sim track"

for line in (out / "trace.jsonl").read_text().splitlines():
    json.loads(line)

runs = list((out / "results").iterdir())
assert len(runs) == 1, f"expected one run dir, got {runs}"
manifest = json.loads((runs[0] / "manifest.json").read_text())
for key in ("run_id", "seed", "threads", "config", "metrics", "counters"):
    assert key in manifest, f"manifest.json: missing {key!r}"
assert manifest["counters"]["clients_trained"] > 0

rounds = (runs[0] / "rounds.csv").read_text().splitlines()
assert rounds[0].startswith("run,round,"), "rounds.csv: bad header"
assert len(rounds) == 1 + manifest["rounds"], "rounds.csv: row count"

hists = manifest["histograms"]
for name in ("client_wall_us", "client_bytes_up", "client_train_mflops"):
    h = hists[name]
    assert h["count"] == manifest["counters"]["clients_trained"], name
    for q in ("p50", "p95", "p99"):
        assert h["min"] <= h[q] <= h["max"], f"{name}.{q} outside [min,max]"

profile = json.loads((runs[0] / "profile.json").read_text())
assert profile["op_totals"], "profile.json: no op totals"
for op in ("local_train", "forward", "backward", "conv2d_fwd"):
    assert op in profile["op_totals"], f"profile.json: no {op!r} op"
assert profile["op_totals"]["conv2d_fwd"]["gemm_flops"] > 0
for row in profile["tree"]:
    assert row["wall_us"] + 1e-6 >= row["self_wall_us"] >= 0, row["path"]

# Per-device-tier rollups (DESIGN.md 5j): the manifest regroups the
# tier-keyed `<base>@<tier>` counters under "tiers", and tiers.csv carries
# the per-(round, tier) deltas.
tiers = manifest["tiers"]
assert tiers, "manifest.json: no per-tier rollups"
for tier, roll in tiers.items():
    assert "@" not in tier and "counters" in roll, tier
assert sum(t["counters"].get("clients_trained", 0)
           for t in tiers.values()) \
    == manifest["counters"]["clients_trained"], "tier rollup partition"

tiers_csv = (runs[0] / "tiers.csv").read_text().splitlines()
assert tiers_csv[0].startswith("run,round,tier,"), "tiers.csv: bad header"
assert len(tiers_csv) > 1, "tiers.csv: no rows"

# The bounded-memory client event journal replaced the clients.csv dump.
assert (runs[0] / "clients.mhbj").is_file(), "clients.mhbj missing"
assert not (runs[0] / "clients.csv").exists(), "legacy clients.csv present"
print("check.sh: telemetry smoke passed")
PY

  local run_dir
  run_dir="$(echo "$out"/results/*)"
  # Client event journal: full structural validation, then the legacy-CSV
  # conversion must reproduce the old clients.csv schema and reconcile with
  # the manifest's trained count.
  python3 "$repo/tools/mhb_journal.py" check "$run_dir/clients.mhbj"
  python3 "$repo/tools/mhb_journal.py" csv "$run_dir/clients.mhbj" \
    -o "$out/clients.csv"
  python3 - "$out/clients.csv" "$run_dir/manifest.json" <<'PY'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines[0] == ("run,round,client,drop_reason,sim_compute_s,"
                    "sim_comm_s,memory_mb,wall_ms,bytes_up,bytes_down,"
                    "train_mflops"), "converted csv: bad header"
manifest = json.load(open(sys.argv[2]))
trained = sum(1 for line in lines[1:] if line.split(",")[3] == "")
assert trained == manifest["counters"]["clients_trained"], "journal rows"
print("check.sh: client journal smoke passed")
PY

  # Cross-run experiment index: a second run into the same results root,
  # then mhb_report.py must index both and render the per-tier tables.
  MHB_TRAIN=160 MHB_TEST=80 "$build_dir/tools/mhbench" run \
    --task cifar10 --algorithm fedavg --rounds 2 --clients 4 \
    --threads 2 --manifest-dir "$out/results" >/dev/null
  python3 "$repo/tools/mhb_report.py" "$out/results" > "$out/report.txt"
  python3 - "$out" <<'PY'
import json, pathlib, sys
out = pathlib.Path(sys.argv[1])
runs = [json.loads(line) for line in
        (out / "results" / "experiments.jsonl").read_text().splitlines()]
assert len(runs) == 2, f"expected 2 indexed runs, got {len(runs)}"
assert {r["algorithm"] for r in runs} == {"sheterofl", "fedavg"}
for r in runs:
    assert r["tiers"], f"run {r['run_id']}: no tier rollups in index"
report = (out / "report.txt").read_text()
assert "== experiments ==" in report, report
assert "== per-tier rollups ==" in report, report
print("check.sh: mhb_report smoke passed (2 runs indexed)")
PY

  # Regression differ round-trip: a run must diff clean against itself, and
  # a doctored copy with 2x client latency must trip the 1.3x gate.
  python3 "$repo/tools/mhb_diff.py" "$run_dir" "$run_dir" >/dev/null
  cp -r "$run_dir" "$out/regressed"
  python3 - "$out/regressed/manifest.json" <<'PY'
import json, sys
path = sys.argv[1]
m = json.load(open(path))
for q in ("p50", "p95", "p99"):
    m["histograms"]["client_wall_us"][q] *= 2
json.dump(m, open(path, "w"))
PY
  if python3 "$repo/tools/mhb_diff.py" "$run_dir" "$out/regressed" \
      >/dev/null; then
    echo "check.sh: mhb_diff missed an injected 2x latency regression" >&2
    return 1
  fi
  echo "check.sh: mhb_diff smoke passed"
}

# Checkpoint/resume smoke: the CLI surface of the snapshot subsystem.  A
# full run, a checkpointing run (snapshot every 2 rounds), and a run resumed
# from the mid-run snapshot must produce manifests that diff clean — same
# counters, histograms, and metrics.  Only the client_wall_us quantiles are
# relaxed: wall time is real-clock noise, explicitly outside the
# bit-identical-resume contract (DESIGN.md §5g).
smoke_resume() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping resume smoke"
    return 0
  fi
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  local cli=("$build_dir/tools/mhbench")
  local common=(run --task cifar10 --algorithm sheterofl --rounds 4 \
    --clients 4 --threads 2 --profile 0)
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" \
    --manifest-dir "$out/full" >/dev/null
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" \
    --checkpoint-every 2 --checkpoint-dir "$out/ckpt" >/dev/null
  test -f "$out/ckpt/round_000002.mhbsnap"
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" \
    --resume "$out/ckpt/round_000002.mhbsnap" \
    --manifest-dir "$out/resumed" >/dev/null
  cat > "$out/thresholds.json" <<'JSON'
{
  "client_wall_us*": {"ratio": 1000}
}
JSON
  python3 "$repo/tools/mhb_diff.py" --thresholds "$out/thresholds.json" \
    "$out/full" "$out/resumed" >/dev/null
  echo "check.sh: resume smoke passed"
}

# Live telemetry smoke: the CLI surface of the exporter (obs/live.h).  Two
# identical runs — exporter off, then exporter on (--live-port 0 with
# heartbeat + watchdog) — where a poller fetches /metrics, /healthz and
# /status.json WHILE the second run trains, schema-checks the captured
# documents plus the heartbeat.jsonl stream afterwards, and finally
# mhb_diffs the two manifests expecting zero metric differences: serving
# telemetry mid-run must not change a single counter, histogram bucket or
# metric.  Only the client_wall_us quantiles are relaxed (real-clock noise,
# same carve-out as the resume smoke).
smoke_live() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping live telemetry smoke"
    return 0
  fi
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  local cli=("$build_dir/tools/mhbench")
  local common=(run --task cifar10 --algorithm sheterofl --rounds 4 \
    --clients 4 --threads 2 --profile 0)
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" \
    --manifest-dir "$out/off" >/dev/null
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" \
    --manifest-dir "$out/on" --live-port 0 --heartbeat-every 0.05 \
    --watchdog-sec 60 > "$out/on.log" &
  local run_pid=$!
  # Poll the announced ephemeral port for as long as the run is alive; every
  # endpoint must answer at least once mid-run.
  if ! python3 - "$out" "$run_pid" <<'PY'
import json, os, re, sys, time, urllib.request

out, pid = sys.argv[1], int(sys.argv[2])
log = os.path.join(out, "on.log")


def alive():
    try:
        os.kill(pid, 0)
        return True
    except OSError:
        return False


port = None
deadline = time.time() + 30
while time.time() < deadline:
    m = re.search(r"live telemetry on http://127\.0\.0\.1:(\d+)",
                  open(log).read())
    if m:
        port = int(m.group(1))
        break
    if not alive():
        sys.exit("mhbench exited before announcing the live port")
    time.sleep(0.02)
assert port is not None, "no live port announced within 30 s"

hits = {"/metrics": 0, "/healthz": 0, "/status.json": 0}
status_body = metrics_body = health_body = None
while alive():
    for path in hits:
        try:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=2).read().decode()
        except Exception:
            continue
        hits[path] += 1
        if path == "/status.json":
            status_body = body
        elif path == "/metrics":
            metrics_body = body
        else:
            health_body = body
    time.sleep(0.02)

for path, n in hits.items():
    assert n > 0, f"never reached {path} mid-run"
assert health_body.strip() == "ok", f"healthz said {health_body!r}"
status = json.loads(status_body)  # must be valid JSON mid-run
for key in ("run_id", "rounds_completed", "last_round", "sim_time_s",
            "stalled", "watchdog_stalls", "accuracy", "counters",
            "histograms", "checkpoint"):
    assert key in status, f"status.json: missing {key!r}"
assert status["watchdog_stalls"] == 0
assert "mhb_up 1" in metrics_body
assert "# TYPE mhb_rounds_completed counter" in metrics_body
print("check.sh: live endpoints served mid-run (metrics="
      f"{hits['/metrics']}, status={hits['/status.json']}, "
      f"healthz={hits['/healthz']})")
PY
  then
    kill "$run_pid" 2>/dev/null || true
    wait "$run_pid" 2>/dev/null || true
    return 1
  fi
  wait "$run_pid"
  # The heartbeat stream next to the manifest: one JSON object per line,
  # monotone seq, silent watchdog.
  python3 - "$out/on" <<'PY'
import glob, json, sys

paths = glob.glob(sys.argv[1] + "/*/heartbeat.jsonl")
assert len(paths) == 1, f"expected one heartbeat.jsonl, got {paths}"
lines = open(paths[0]).read().splitlines()
assert lines, "heartbeat.jsonl is empty"
for i, line in enumerate(lines):
    rec = json.loads(line)
    assert rec["seq"] == i, f"line {i}: seq {rec['seq']}"
    for key in ("utc", "unix_s", "uptime_s", "run_id", "round",
                "rounds_completed", "rounds_total", "sim_time_s",
                "clients_trained", "bytes_up", "checkpoints_written",
                "stalled", "watchdog_stalls"):
        assert key in rec, f"line {i}: missing {key!r}"
final = json.loads(lines[-1])
assert final["watchdog_stalls"] == 0, "watchdog fired on a healthy run"
assert final["stalled"] is False
print(f"check.sh: heartbeat stream valid ({len(lines)} lines)")
PY
  # The client event journal is a pure function of the cost model and the
  # serial draws: serving telemetry mid-run must not change a single byte.
  cmp "$out"/off/*/clients.mhbj "$out"/on/*/clients.mhbj
  echo "check.sh: client journal bit-identical with exporter attached"
  cat > "$out/thresholds.json" <<'JSON'
{
  "client_wall_us*": {"ratio": 1000}
}
JSON
  python3 "$repo/tools/mhb_diff.py" --thresholds "$out/thresholds.json" \
    "$out/off" "$out/on" >/dev/null
  echo "check.sh: live telemetry smoke passed"
}

# Determinism-audit smoke: the CLI surface of the divergence auditor
# (obs/det_audit.h, DESIGN.md §5k).  Three legs: (1) a 4-round config run at
# 1 and 2 threads with --det-audit 1 must produce ledgers mhb_bisect.py
# calls identical ("no divergence", exit 0); (2) the MHB_DET_AUDIT_INJECT
# seam perturbs the rng component from round 0 on, and the bisect must exit
# nonzero naming exactly that round and component; (3) the auditor is pure
# observation — an audit-on run's manifest counters and client journal
# bytes equal an audit-off run's.
smoke_det_audit() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping det-audit smoke"
    return 0
  fi
  local out
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' RETURN
  local cli=("$build_dir/tools/mhbench")
  local common=(run --task cifar10 --algorithm sheterofl --rounds 4 \
    --clients 4 --profile 0)
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" --threads 1 \
    --manifest-dir "$out/t1" --det-audit 1 >/dev/null
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" --threads 2 \
    --manifest-dir "$out/t2" --det-audit 1 >/dev/null
  local ledger1 ledger2
  ledger1="$(echo "$out"/t1/*/det_audit.jsonl)"
  ledger2="$(echo "$out"/t2/*/det_audit.jsonl)"
  python3 "$repo/tools/mhb_bisect.py" diff "$ledger1" "$ledger2" \
    | tee "$out/bisect.out"
  grep -q "no divergence" "$out/bisect.out"
  echo "check.sh: det-audit ledgers identical at 1 vs 2 threads"

  # Injected divergence: the bisect must fail and localize it to the seam.
  MHB_TRAIN=160 MHB_TEST=80 MHB_DET_AUDIT_INJECT=rng \
    "${cli[@]}" "${common[@]}" --threads 2 \
    --manifest-dir "$out/inj" --det-audit 1 >/dev/null
  local ledger_inj
  ledger_inj="$(echo "$out"/inj/*/det_audit.jsonl)"
  if python3 "$repo/tools/mhb_bisect.py" diff "$ledger1" "$ledger_inj" \
      > "$out/bisect_inj.out"; then
    echo "check.sh: mhb_bisect missed the injected divergence" >&2
    return 1
  fi
  grep -q "divergence at round 0" "$out/bisect_inj.out"
  grep -q "rng" "$out/bisect_inj.out"
  echo "check.sh: injected divergence localized to round 0, component rng"

  # Pure observation: audit-off at the same thread count must match the
  # audit-on run's journal bytes exactly and its manifest counters +
  # histogram buckets key for key.
  MHB_TRAIN=160 MHB_TEST=80 "${cli[@]}" "${common[@]}" --threads 2 \
    --manifest-dir "$out/noaudit" >/dev/null
  cmp "$out"/t2/*/clients.mhbj "$out"/noaudit/*/clients.mhbj
  python3 - "$out" <<'PY'
import glob, json, sys
out = sys.argv[1]
on = json.load(open(glob.glob(out + "/t2/*/manifest.json")[0]))
off = json.load(open(glob.glob(out + "/noaudit/*/manifest.json")[0]))
assert on["counters"] == off["counters"], "counters changed under audit"
for name, h in on["histograms"].items():
    if name.split("@")[0].endswith(("_us", "_ms")):
        continue  # wall clock: outside the determinism contract
    assert h == off["histograms"][name], f"histogram {name} changed"
assert on["metrics"] == off["metrics"], "metrics changed under audit"
print("check.sh: audit-on run bit-identical to audit-off")
PY
  echo "check.sh: det-audit smoke passed"
}

# Kernel benchmark smoke: builds Release, runs the GEMM/conv micro-benchmarks
# through every variant (fast vs naive, threaded at 1/2/4 workers, bf16/int8
# vs f32), and distills the raw google-benchmark output into
# BENCH_kernels.json (p50/p95 wall time per shape plus machine-normalized
# speedup ratios; threaded entries where the thread count exceeds the host's
# CPUs are annotated rather than gated).  Per-repetition rows (no
# aggregates-only) feed real quantiles.  The fresh report is gated against
# the committed baseline with mhb_diff at a 1.3x threshold on the speedup
# ratios — absolute times are too host-dependent to assert — and the diff
# refuses cross-backend comparisons (the report records the
# runtime-dispatched kernel backend).  On pass the committed file is
# replaced.  bench_report.py exits 3 when bench_micro itself was a debug
# build (the binary stamps its NDEBUG state into the context), which aborts
# this function under `set -e` — a miswired non-Release build cannot
# publish numbers.
smoke_bench() {
  local build_dir="$1"
  if ! command -v python3 >/dev/null 2>&1; then
    echo "check.sh: python3 not found, skipping kernel bench smoke"
    return 0
  fi
  local raw
  raw="$(mktemp)"
  trap 'rm -f "$raw"' RETURN
  "$build_dir/bench/bench_micro" \
    --benchmark_filter='BM_Matmul|BM_Conv2d' \
    --benchmark_min_time=0.3 --benchmark_repetitions=5 \
    --benchmark_out="$raw" --benchmark_out_format=json >/dev/null
  python3 "$repo/tools/bench_report.py" "$raw" "$build_dir/BENCH_kernels.json"
  python3 "$repo/tools/mhb_diff.py" --latency-ratio 1.3 \
    "$repo/BENCH_kernels.json" "$build_dir/BENCH_kernels.json"
  cp "$build_dir/BENCH_kernels.json" "$repo/BENCH_kernels.json"
}

# Writes the observability artifacts of two small profiled runs into
# $build_dir/obs-artifacts so CI can upload them alongside the bench
# report: per-run manifests, rounds.csv + tiers.csv, client journals, and
# the cross-run experiments.jsonl index + per-tier report from
# tools/mhb_report.py.
emit_obs_artifacts() {
  local build_dir="$1"
  rm -rf "$build_dir/obs-artifacts"
  local alg
  for alg in sheterofl fedavg; do
    MHB_TRAIN=160 MHB_TEST=80 "$build_dir/tools/mhbench" run \
      --task cifar10 --algorithm "$alg" --rounds 2 --clients 4 \
      --threads 2 --manifest-dir "$build_dir/obs-artifacts" \
      --det-audit 1 >/dev/null
  done
  if command -v python3 >/dev/null 2>&1; then
    python3 "$repo/tools/mhb_report.py" "$build_dir/obs-artifacts" \
      | tee "$build_dir/obs-artifacts/report.txt"
  fi
  echo "check.sh: obs artifacts in $build_dir/obs-artifacts"
}

case "$mode" in
  all|--all)
    run_lint
    run_suite "$repo/build"
    smoke_obs "$repo/build"
    smoke_resume "$repo/build"
    smoke_live "$repo/build"
    smoke_det_audit "$repo/build"
    run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread
    smoke_live "$repo/build-tsan"
    ;;
  --lint) run_lint ;;
  --plain)
    run_suite "$repo/build"
    smoke_obs "$repo/build"
    smoke_resume "$repo/build"
    smoke_live "$repo/build"
    smoke_det_audit "$repo/build"
    ;;
  --tsan)
    run_suite "$repo/build-tsan" -DMHBENCH_SANITIZE=thread
    smoke_live "$repo/build-tsan"
    ;;
  --asan)  run_suite "$repo/build-asan" -DMHBENCH_SANITIZE=address ;;
  --ubsan)
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
      run_suite "$repo/build-ubsan" -DMHBENCH_SANITIZE=undefined
    ;;
  --asan-ubsan)
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
      run_suite "$repo/build-asan-ubsan" -DMHBENCH_SANITIZE=address,undefined
    ;;
  --wthread-safety) run_wthread_safety ;;
  --release) run_suite "$repo/build-release" -DCMAKE_BUILD_TYPE=Release ;;
  --bench)
    run_suite "$repo/build-release" -DCMAKE_BUILD_TYPE=Release
    smoke_bench "$repo/build-release"
    emit_obs_artifacts "$repo/build-release"
    ;;
  *)
    echo "usage: tools/check.sh [--lint|--plain|--tsan|--asan|--ubsan|" \
         "--asan-ubsan|--wthread-safety|--release|--bench]" >&2
    exit 2
    ;;
esac

echo "check.sh: all suites passed"
