#!/usr/bin/env python3
"""Cross-run experiment index and per-tier comparison report.

Scans a results root for run manifests (the `manifest.json` files
`mhbench run --manifest-dir` writes), indexes them into one
`experiments.jsonl` (one JSON object per run), and renders per-device-tier
comparison tables — accuracy, time-to-accuracy, and drop rate by tier
across algorithms and constraint regimes (DESIGN.md 5j).  Pure python,
no third-party dependencies.

Usage:
  mhb_report.py <results_root> [--out experiments.jsonl]
                [--target-fraction 0.9]

Exit status is 1 when no manifest is found under the root.
"""

import argparse
import csv
import json
import os
import sys


def find_manifests(root):
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        if "manifest.json" in filenames:
            yield os.path.join(dirpath, "manifest.json")


def time_to_accuracy(run_dir, target_fraction):
    """Earliest sim_time_s whose global_acc reaches target_fraction of the
    run's final accuracy, from rounds.csv; None when unavailable."""
    path = os.path.join(run_dir, "rounds.csv")
    if not os.path.exists(path):
        return None
    points = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            acc = row.get("global_acc", "")
            t = row.get("sim_time_s", "")
            if acc and t:
                points.append((float(t), float(acc)))
    if not points:
        return None
    final_acc = points[-1][1]
    target = target_fraction * final_acc
    for t, acc in points:
        if acc >= target:
            return t
    return None


def tier_summary(manifest):
    """Per-tier counter rollups -> {tier: {selected, trained, dropped,
    offline, bytes_up, drop_rate}}."""
    out = {}
    for tier, data in manifest.get("tiers", {}).items():
        counters = data.get("counters", {})
        selected = counters.get("clients_selected", 0)
        dropped = counters.get("clients_dropped", 0)
        offline = counters.get("clients_offline", 0)
        out[tier] = {
            "selected": selected,
            "trained": counters.get("clients_trained", 0),
            "dropped": dropped,
            "offline": offline,
            "bytes_up": counters.get("bytes_up", 0),
            "drop_rate": (dropped + offline) / selected if selected else 0.0,
        }
    return out


def index_run(manifest_path, target_fraction):
    with open(manifest_path) as f:
        manifest = json.load(f)
    run_dir = os.path.dirname(manifest_path)
    config = manifest.get("config", {})
    metrics = manifest.get("metrics", {})
    algorithm = config.get("algorithm", "")
    accuracy = None
    for key, value in metrics.items():
        # Keyed "<algorithm>.global_accuracy"; prefer the configured
        # algorithm's entry over the fedavg-small baseline's.
        if key == algorithm + ".global_accuracy":
            accuracy = value
    if accuracy is None:
        for key, value in sorted(metrics.items()):
            if key.endswith(".global_accuracy"):
                accuracy = value
                break
    return {
        "run_id": manifest.get("run_id", os.path.basename(run_dir)),
        "path": run_dir,
        "created_utc": manifest.get("created_utc", ""),
        "git_describe": manifest.get("git_describe", ""),
        "seed": manifest.get("seed", 0),
        "threads": manifest.get("threads", 1),
        "task": config.get("task", ""),
        "constraint": config.get("constraint", ""),
        "algorithm": algorithm,
        "rounds": manifest.get("rounds", 0),
        "global_accuracy": accuracy,
        "time_to_accuracy_s": time_to_accuracy(run_dir, target_fraction),
        "metrics": metrics,
        "tiers": tier_summary(manifest),
    }


def render_table(header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths)), sep]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_num(v, digits=4):
    if v is None:
        return "-"
    return ("%." + str(digits) + "g") % v


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", help="results root to scan for manifests")
    parser.add_argument(
        "--out",
        default="",
        help="experiments.jsonl path (default <root>/experiments.jsonl)",
    )
    parser.add_argument(
        "--target-fraction",
        type=float,
        default=0.9,
        help="time-to-accuracy target as a fraction of final accuracy",
    )
    args = parser.parse_args()

    runs = [
        index_run(path, args.target_fraction)
        for path in find_manifests(args.root)
    ]
    if not runs:
        print("no manifest.json found under %s" % args.root, file=sys.stderr)
        return 1

    out_path = args.out or os.path.join(args.root, "experiments.jsonl")
    with open(out_path, "w") as f:
        for run in runs:
            f.write(json.dumps(run, sort_keys=True) + "\n")
    print(
        "indexed %d run(s) -> %s" % (len(runs), out_path)
    )

    # Run-level comparison: one row per run, sorted by the experiment axes.
    print("\n== experiments ==")
    rows = []
    for run in sorted(
        runs, key=lambda r: (r["task"], r["constraint"], r["algorithm"])
    ):
        rows.append(
            [
                run["task"],
                run["constraint"],
                run["algorithm"],
                fmt_num(run["global_accuracy"]),
                fmt_num(run["time_to_accuracy_s"]),
                str(run["seed"]),
            ]
        )
    print(
        render_table(
            ["task", "constraint", "algorithm", "accuracy", "tta_s", "seed"],
            rows,
        )
    )

    # Per-tier comparison: one row per (run, tier) with the tier rollups.
    tiers_seen = sorted({t for run in runs for t in run["tiers"]})
    if tiers_seen:
        print("\n== per-tier rollups ==")
        rows = []
        for run in sorted(
            runs, key=lambda r: (r["task"], r["constraint"], r["algorithm"])
        ):
            for tier in sorted(run["tiers"]):
                s = run["tiers"][tier]
                rows.append(
                    [
                        run["constraint"],
                        run["algorithm"],
                        tier,
                        str(s["selected"]),
                        str(s["trained"]),
                        fmt_num(s["drop_rate"], 3),
                        str(s["bytes_up"]),
                        fmt_num(run["global_accuracy"]),
                    ]
                )
        print(
            render_table(
                [
                    "constraint",
                    "algorithm",
                    "tier",
                    "selected",
                    "trained",
                    "drop_rate",
                    "bytes_up",
                    "accuracy",
                ],
                rows,
            )
        )
    else:
        print("\n(no per-tier rollups found in any manifest)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
