#!/usr/bin/env python3
"""Read / validate mhbench client event journals (clients.mhbj).

The journal is the bounded-memory replacement for the in-memory per-client
timeline (DESIGN.md 5j, src/obs/journal.h): one header followed by one
CRC-framed block per round barrier.  This tool is a pure-python parser —
no third-party dependencies.

Usage:
  mhb_journal.py check <clients.mhbj>
      Fully validate magic, version, every block frame and CRC, and every
      record's bounds; print a summary.  Exits 1 on any corruption.
  mhb_journal.py csv <clients.mhbj> [-o out.csv]
      Convert the journal to the legacy clients.csv schema (stdout by
      default).  wall_ms is emitted as 0: measured wall time deliberately
      is not journaled (it lives in the client_wall_us histograms) so
      journal bytes stay bit-identical across --threads.

Wire format (little-endian):
  header  "MHBJRNL1" | u32 version | f64 sample_rate | u64 sample_seed
  block   u64 payload_len | u32 crc32(payload) | payload
  payload u32 round | u32 run_len | run | u32 record_count | record*
  record  i32 client | u32 tier_len | tier | u8 drop_code
          | f64 sim_compute_s | f64 sim_comm_s | f64 memory_mb
          | i64 bytes_up | i64 bytes_down | i64 train_mflops
"""

import argparse
import struct
import sys
import zlib

MAGIC = b"MHBJRNL1"
VERSION = 1
DROP_REASONS = {0: "", 1: "offline", 2: "straggler"}

CSV_HEADER = (
    "run,round,client,drop_reason,sim_compute_s,sim_comm_s,memory_mb,"
    "wall_ms,bytes_up,bytes_down,train_mflops"
)


class JournalError(Exception):
    pass


class Cursor:
    def __init__(self, data, what):
        self.data = data
        self.pos = 0
        self.what = what

    def take(self, n):
        if self.pos + n > len(self.data):
            raise JournalError("truncated %s" % self.what)
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def i32(self):
        return struct.unpack("<i", self.take(4))[0]

    def i64(self):
        return struct.unpack("<q", self.take(8))[0]

    def f64(self):
        return struct.unpack("<d", self.take(8))[0]

    def string(self):
        n = self.u32()
        return self.take(n).decode("utf-8")

    def remaining(self):
        return len(self.data) - self.pos


def read_journal(path):
    """Parse and fully validate; returns (meta dict, list of record dicts)."""
    with open(path, "rb") as f:
        data = f.read()
    cur = Cursor(data, "header")
    if cur.take(len(MAGIC)) != MAGIC:
        raise JournalError("bad magic")
    version = cur.u32()
    if version != VERSION:
        raise JournalError(
            "unsupported version %d (want %d)" % (version, VERSION)
        )
    meta = {
        "version": version,
        "sample_rate": cur.f64(),
        "sample_seed": cur.u64(),
    }
    records = []
    blocks = 0
    while cur.remaining() > 0:
        frame = Cursor(data[cur.pos :], "block frame")
        payload_len = frame.u64()
        crc = frame.u32()
        if payload_len > frame.remaining():
            raise JournalError("truncated block payload")
        payload = frame.take(payload_len)
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise JournalError("block CRC mismatch")
        body = Cursor(payload, "block body")
        rnd = body.u32()
        run = body.string()
        count = body.u32()
        for _ in range(count):
            rec = {
                "run": run,
                "round": rnd,
                "client": body.i32(),
                "device_tier": body.string(),
            }
            code = body.u8()
            if code not in DROP_REASONS:
                raise JournalError("unknown drop code %d" % code)
            rec["drop_reason"] = DROP_REASONS[code]
            rec["sim_compute_s"] = body.f64()
            rec["sim_comm_s"] = body.f64()
            rec["memory_mb"] = body.f64()
            rec["bytes_up"] = body.i64()
            rec["bytes_down"] = body.i64()
            rec["train_mflops"] = body.i64()
            records.append(rec)
        if body.remaining() != 0:
            raise JournalError("trailing bytes in block")
        cur.pos += frame.pos
        blocks += 1
    meta["blocks"] = blocks
    return meta, records


def fmt(v):
    """Format a double like C++ `ostream << double` (%g, 6 significant)."""
    return "%g" % v


def cmd_check(args):
    try:
        meta, records = read_journal(args.journal)
    except (JournalError, OSError) as e:
        print("FAIL %s: %s" % (args.journal, e), file=sys.stderr)
        return 1
    tiers = {}
    drops = {"": 0, "offline": 0, "straggler": 0}
    rounds = set()
    for rec in records:
        tiers[rec["device_tier"]] = tiers.get(rec["device_tier"], 0) + 1
        drops[rec["drop_reason"]] += 1
        rounds.add((rec["run"], rec["round"]))
    print(
        "OK %s: version=%d sample_rate=%g blocks=%d rounds=%d records=%d"
        % (
            args.journal,
            meta["version"],
            meta["sample_rate"],
            meta["blocks"],
            len(rounds),
            len(records),
        )
    )
    print(
        "   trained=%d offline=%d straggler=%d"
        % (drops[""], drops["offline"], drops["straggler"])
    )
    for tier in sorted(tiers):
        print("   tier %-10s %d records" % (tier or "(untiered)", tiers[tier]))
    return 0


def cmd_csv(args):
    meta, records = read_journal(args.journal)
    del meta
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        print(CSV_HEADER, file=out)
        for rec in records:
            # Dropped clients journal zero transfer/compute, matching the
            # legacy writer; wall_ms is always 0 (not journaled).
            print(
                ",".join(
                    [
                        rec["run"],
                        str(rec["round"]),
                        str(rec["client"]),
                        rec["drop_reason"],
                        fmt(rec["sim_compute_s"]),
                        fmt(rec["sim_comm_s"]),
                        fmt(rec["memory_mb"]),
                        "0",
                        str(rec["bytes_up"]),
                        str(rec["bytes_down"]),
                        str(rec["train_mflops"]),
                    ]
                ),
                file=out,
            )
    finally:
        if args.output:
            out.close()
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    p_check = sub.add_parser("check", help="validate a journal")
    p_check.add_argument("journal")
    p_csv = sub.add_parser("csv", help="convert to legacy clients.csv")
    p_csv.add_argument("journal")
    p_csv.add_argument("-o", "--output", default="")
    args = parser.parse_args()
    if args.command == "check":
        return cmd_check(args)
    try:
        return cmd_csv(args)
    except (JournalError, OSError) as e:
        print("error: %s" % e, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
