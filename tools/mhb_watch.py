#!/usr/bin/env python3
"""Terminal progress view for a live mhbench run.

Usage: mhb_watch.py [--port P | --url URL] [--interval SEC] [--once]

Polls the run's /status.json (served by `mhbench run --live-port P`,
obs/live.h) and renders a one-screen progress report: round progress bar,
simulated clock, the accuracy-curve tail, stall state, and the headline
counters.  Strictly an observer — it only issues GETs against the
exporter's read-only endpoints, so watching a run can never perturb it.

  mhb_watch.py --port 8787                # watch http://127.0.0.1:8787
  mhb_watch.py --url http://host:8787     # watch a remote run
  mhb_watch.py --port 8787 --once         # print one snapshot and exit

Connection refused is treated as "run not up yet / already finished": the
watcher keeps retrying until interrupted (or exits 1 under --once).

Exit status: 0 on a clean snapshot (or Ctrl-C), 1 when --once cannot reach
the exporter or the payload is malformed.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(url, timeout=2.0):
    """Returns the parsed /status.json object, or None when unreachable."""
    try:
        with urllib.request.urlopen(url + "/status.json", timeout=timeout) as r:
            return json.loads(r.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


def progress_bar(done, total, width=30):
    if total <= 0:
        return "[" + "?" * width + "]"
    filled = min(width, int(width * done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render(status):
    lines = []
    done = status.get("rounds_completed", 0)
    total = status.get("rounds_total", 0)
    run_id = status.get("run_id") or status.get("run") or "?"
    pct = f" {100.0 * done / total:5.1f}%" if total > 0 else ""
    lines.append(f"run      {run_id}")
    lines.append(
        f"rounds   {progress_bar(done, total)} {done}"
        + (f"/{total}{pct}" if total > 0 else " completed")
    )
    lines.append(
        f"clock    sim {status.get('sim_time_s', 0):.1f} s"
        f"   up {status.get('uptime_s', 0):.1f} s"
        f"   last progress {status.get('progress_age_s', 0):.1f} s ago"
    )
    if status.get("stalled"):
        lines.append("state    STALLED (watchdog fired "
                     f"{status.get('watchdog_stalls', 0)}x)")
    else:
        lines.append("state    healthy"
                     + (f", {status['watchdog_stalls']} past stall(s)"
                        if status.get("watchdog_stalls") else ""))

    acc = status.get("accuracy") or []
    if acc:
        tail = ", ".join(f"r{r}={a:.4f}" for r, a in acc[-5:])
        lines.append(f"accuracy {tail}")

    counters = status.get("counters") or {}
    headline = [
        (name, counters[name])
        for name in ("clients_trained", "clients_dropped", "bytes_up",
                     "bytes_down", "gemm_flops")
        if name in counters
    ]
    if headline:
        lines.append("counters " +
                     "  ".join(f"{n}={v:,}" for n, v in headline))

    # Per-device-tier breakdown from the exporter's "tiers" rollups.
    tiers = status.get("tiers") or {}
    for tier in sorted(tiers):
        tc = tiers[tier].get("counters") or {}
        selected = tc.get("clients_selected", 0)
        dropped = tc.get("clients_dropped", 0) + tc.get("clients_offline", 0)
        drop_rate = dropped / selected if selected else 0.0
        lines.append(
            f"tier     {tier:<10} trained={tc.get('clients_trained', 0):,}"
            f"  selected={selected:,}  drop_rate={drop_rate:.3f}"
            f"  bytes_up={tc.get('bytes_up', 0):,}")

    ckpt = status.get("checkpoint") or {}
    if ckpt.get("written"):
        lines.append(f"ckpt     {ckpt['written']} written, resume round "
                     f"{ckpt.get('next_round')} -> {ckpt.get('path')}")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(
        description="watch a live mhbench run via its /status.json")
    group = ap.add_mutually_exclusive_group()
    group.add_argument("--port", type=int,
                       help="poll http://127.0.0.1:PORT (the --live-port "
                            "of the run)")
    group.add_argument("--url", help="full base URL of the exporter")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="poll interval in seconds (default 1)")
    ap.add_argument("--once", action="store_true",
                    help="print a single snapshot and exit")
    args = ap.parse_args()

    if args.url:
        url = args.url.rstrip("/")
    else:
        url = f"http://127.0.0.1:{args.port if args.port else 8787}"

    try:
        while True:
            status = fetch_status(url)
            if args.once:
                if status is None:
                    print(f"mhb_watch: no exporter at {url}", file=sys.stderr)
                    return 1
                print(render(status))
                return 0
            # Clear-screen redraw keeps the view stable without curses.
            sys.stdout.write("\x1b[2J\x1b[H")
            if status is None:
                print(f"mhb_watch: waiting for {url} ...")
            else:
                print(render(status))
            sys.stdout.flush()
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
