// Reproduces Figure 8: non-IID performance under the computation-limited
// scenario, with Dirichlet alpha = 0.5 and 5 (plus the IID reference).
#include "core/table.h"
#include "suite_main.h"

int main() {
  using namespace mhbench;
  std::puts(
      "Figure 8: non-IID (Dirichlet) performance, computation-limited\n");

  std::vector<metrics::MetricBundle> all;
  for (const std::string task : {"cifar10", "cifar100"}) {
    for (double alpha : {0.0, 5.0, 0.5}) {  // 0 = IID reference
      bench_support::SuiteOptions options;
      options.constraint = "computation";
      options.task = task;
      options.dirichlet_alpha = alpha;
      const auto bundles =
          bench_support::RunSuite(benchmain::MhflAlgorithms(), options);
      const std::string label =
          task + (alpha > 0 ? " / alpha=" + AsciiTable::Num(alpha, 1)
                            : " / iid");
      std::fputs(metrics::RenderMetricPanel(label, bundles).c_str(), stdout);
      for (auto b : bundles) {
        b.constraint = "computation" + std::string(alpha > 0 ? "-noniid" : "");
        b.task = label;
        all.push_back(std::move(b));
      }
    }
  }

  const std::string csv_path =
      EnvString("MHB_CSV_DIR", ".") + "/fig8_noniid.csv";
  std::ofstream csv(csv_path);
  if (csv.good()) {
    csv << metrics::ToCsv(all);
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  return 0;
}
