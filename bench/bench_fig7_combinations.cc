// Reproduces Figure 7: constraint combinations on CIFAR-100 —
// communication+memory and computation+communication+memory limited MHFL,
// compared against the single-constraint accuracies.
#include "core/table.h"
#include "suite_main.h"

int main() {
  using namespace mhbench;
  std::puts("Figure 7: analysis of constraint combinations (CIFAR-100)\n");

  std::vector<metrics::MetricBundle> all;
  for (const std::string constraint :
       {"communication", "memory", "comm+mem", "comp+comm+mem"}) {
    bench_support::SuiteOptions options;
    options.constraint = constraint;
    options.task = "cifar100";
    const auto bundles =
        bench_support::RunSuite(benchmain::MhflAlgorithms(), options);
    std::fputs(metrics::RenderMetricPanel("cifar100 / " + constraint, bundles)
                   .c_str(),
               stdout);
    all.insert(all.end(), bundles.begin(), bundles.end());
  }

  // Summary: accuracy per algorithm across the combination ladder.
  AsciiTable summary({"Algorithm", "communication", "memory", "comm+mem",
                      "comp+comm+mem"});
  for (const auto& name : benchmain::MhflAlgorithms()) {
    std::vector<std::string> row = {name};
    for (const std::string constraint :
         {"communication", "memory", "comm+mem", "comp+comm+mem"}) {
      for (const auto& b : all) {
        if (b.algorithm == name && b.constraint == constraint) {
          row.push_back(AsciiTable::Num(b.global_accuracy, 3));
        }
      }
    }
    summary.AddRow(row);
  }
  std::puts("-- accuracy vs constraint combination --");
  std::fputs(summary.Render().c_str(), stdout);

  const std::string csv_path =
      EnvString("MHB_CSV_DIR", ".") + "/fig7_combinations.csv";
  std::ofstream csv(csv_path);
  if (csv.good()) {
    csv << metrics::ToCsv(all);
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  return 0;
}
