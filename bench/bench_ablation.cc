// Ablation benches for the design choices DESIGN.md calls out:
//
//  1. Static batch-norm evaluation (sBN) vs aggregated running statistics.
//     Width-heterogeneous aggregation mixes BN statistics from sub-networks
//     with different effective inputs; sBN is what makes HeteroFL-style
//     evaluation meaningful.
//  2. Data-size-weighted vs uniform client aggregation.
//  3. State heterogeneity: per-device availability when sampled.
//  4. FedRolex's rolling window vs a static prefix: exact mask-level
//     coordinate coverage, plus the (horizon-limited) accuracy comparison
//     when no client holds the full model.
#include <cstdio>
#include <set>

#include "algorithms/registry.h"
#include "models/index_map.h"
#include "algorithms/sheterofl.h"
#include "core/table.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

namespace {

using namespace mhbench;

struct Setup {
  data::Task task;
  models::TaskModels tm;
  std::vector<fl::ClientAssignment> assignments;
};

Setup MakeSetup(const std::vector<double>& ladder) {
  data::TaskConfig tcfg;
  tcfg.train_samples = 360;
  tcfg.test_samples = 160;
  tcfg.num_clients = 8;
  Setup s{data::MakeTask("cifar10", tcfg),
          models::MakeTaskModels("cifar10"),
          fl::UniformCapacityAssignments(8, ladder)};
  return s;
}

fl::FlConfig FastConfig() {
  fl::FlConfig cfg;
  cfg.rounds = 16;
  cfg.sample_fraction = 0.5;
  cfg.eval_every = 16;
  cfg.eval_max_samples = 160;
  cfg.stability_max_samples = 1;
  return cfg;
}

double RunVariant(Setup& s, const std::string& name,
                  bool sbn, bool data_weighted) {
  algorithms::AlgorithmOptions aopts;
  auto alg = algorithms::MakeAlgorithm(name, s.tm, aopts);
  auto* ws = dynamic_cast<algorithms::WeightSharingAlgorithm*>(alg.get());
  if (ws != nullptr) {
    ws->set_sbn_eval(sbn);
    ws->set_aggregation_weighting(
        data_weighted
            ? algorithms::WeightSharingAlgorithm::AggregationWeighting::
                  kDataSize
            : algorithms::WeightSharingAlgorithm::AggregationWeighting::
                  kUniform);
  }
  fl::FlEngine engine(s.task, FastConfig(), s.assignments, *alg);
  return engine.Run().final_accuracy;
}

}  // namespace

int main() {
  std::puts("Ablation 1: static-batch-norm evaluation (sheterofl, cifar10)");
  {
    Setup s = MakeSetup(algorithms::RatioLadder());
    AsciiTable t({"Variant", "Global accuracy"});
    t.AddRow({"sBN eval (default)",
              AsciiTable::Num(RunVariant(s, "sheterofl", true, true), 3)});
    t.AddRow({"running-stats eval",
              AsciiTable::Num(RunVariant(s, "sheterofl", false, true), 3)});
    std::fputs(t.Render().c_str(), stdout);
  }

  std::puts("\nAblation 2: aggregation weighting (depthfl, cifar10)");
  {
    Setup s = MakeSetup(algorithms::RatioLadder());
    AsciiTable t({"Variant", "Global accuracy"});
    t.AddRow({"data-size weighted (default)",
              AsciiTable::Num(RunVariant(s, "depthfl", true, true), 3)});
    t.AddRow({"uniform weights",
              AsciiTable::Num(RunVariant(s, "depthfl", true, false), 3)});
    std::fputs(t.Render().c_str(), stdout);
  }

  std::puts(
      "\nAblation 3: state heterogeneity — devices offline with probability\n"
      "(1 - availability) when sampled (sheterofl, cifar10):");
  {
    AsciiTable t({"Availability", "Global accuracy"});
    for (double avail : {1.0, 0.7, 0.4}) {
      Setup s = MakeSetup(algorithms::RatioLadder());
      for (auto& a : s.assignments) a.system.availability = avail;
      t.AddRow({AsciiTable::Num(avail, 1),
                AsciiTable::Num(RunVariant(s, "sheterofl", true, true), 3)});
    }
    std::fputs(t.Render().c_str(), stdout);
  }

  std::puts(
      "\nAblation 4: rolling window coverage — when no client holds the\n"
      "full model (ladder capped at 0.5), a static prefix leaves the outer\n"
      "coordinates of every channel group untrained forever; FedRolex's\n"
      "rolling window reaches them all within one wrap:");
  {
    // Mask-level coverage of a 16-channel group under ratios {0.25, 0.5}.
    AsciiTable t({"Rounds", "prefix coverage", "rolling coverage"});
    for (int rounds : {1, 4, 8, 16}) {
      std::set<int> prefix_cov, rolling_cov;
      for (int r = 0; r < rounds; ++r) {
        for (double ratio : {0.25, 0.5}) {
          const int keep = models::ScaledCount(16, ratio);
          for (int i : models::PrefixIndices(16, keep)) prefix_cov.insert(i);
          for (int i : models::RollingIndices(16, keep, r)) {
            rolling_cov.insert(i);
          }
        }
      }
      t.AddRow({std::to_string(rounds),
                AsciiTable::Num(prefix_cov.size() / 16.0 * 100, 0) + "%",
                AsciiTable::Num(rolling_cov.size() / 16.0 * 100, 0) + "%"});
    }
    std::fputs(t.Render().c_str(), stdout);
  }
  std::puts(
      "Accuracy at this fast 16-round preset (the coverage advantage needs\n"
      "FedRolex's long training horizons — thousands of rounds in its paper\n"
      "— to convert into full-supernet accuracy; at short horizons the\n"
      "static prefix's consistently-trained sub-model serves better):");
  {
    Setup s = MakeSetup({0.25, 0.5});
    AsciiTable t({"Algorithm", "Global accuracy (served model)"});
    t.AddRow({"sheterofl (static prefix, serves x0.5)",
              AsciiTable::Num(RunVariant(s, "sheterofl", true, true), 3)});
    t.AddRow({"fedrolex (rolling window, serves x1.0)",
              AsciiTable::Num(RunVariant(s, "fedrolex", true, true), 3)});
    std::fputs(t.Render().c_str(), stdout);
  }
  return 0;
}
