// Reproduces Figure 4: computation-limited MHFL — global accuracy and
// time-to-accuracy (top row), stability and effectiveness (bottom row) for
// every algorithm on all six data tasks.
#include "suite_main.h"

int main() {
  using namespace mhbench;
  const std::vector<std::string> tasks = {
      "cifar10", "cifar100", "agnews", "stackoverflow", "harbox", "ucihar"};
  return benchmain::RunConstraintFigure(
      "fig4_computation", "computation-limited MHFL", "computation", tasks);
}
