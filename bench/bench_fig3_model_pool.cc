// Reproduces Figure 3: the constructed model pool — measured parameters and
// forward GFLOPs of ResNet variants under three algorithms on Jetson Orin
// NX (the candidates the practical constraint cases select from).
#include <cstdio>

#include "algorithms/registry.h"
#include "core/table.h"
#include "device/device_profile.h"
#include "device/model_pool.h"

int main() {
  using namespace mhbench;
  std::puts(
      "Figure 3: model pool statistics (ResNet family, Jetson Orin NX)\n");

  const device::DeviceProfile orin = device::JetsonOrinNx();
  const device::PaperTaskDescs descs = device::PaperDescsForTask("cifar100");

  for (const char* algorithm : {"sheterofl", "depthfl", "fedrolex"}) {
    std::printf("-- algorithm: %s --\n", algorithm);
    const device::ModelPool pool = device::ModelPool::ForAlgorithm(
        algorithm, descs, algorithms::RatioLadder(), orin);
    AsciiTable table({"Candidate", "Ratio", "Params (M)", "GFLOPs (fwd)",
                      "Train time (s)", "Memory (MB)"});
    for (const auto& e : pool.entries()) {
      table.AddRow({e.model, AsciiTable::Num(e.ratio, 2),
                    AsciiTable::Num(e.cost.params_m, 2),
                    AsciiTable::Num(e.cost.gflops_fwd, 3),
                    AsciiTable::Num(e.cost.train_time_s, 1),
                    AsciiTable::Num(e.cost.memory_mb, 0)});
    }
    std::fputs(table.Render().c_str(), stdout);
  }

  // Topology pools (the R-18/34/50/101 sweep in the figure).
  std::puts("-- topology candidates (fedet) --");
  const device::ModelPool topo = device::ModelPool::ForAlgorithm(
      "fedet", descs, algorithms::RatioLadder(), orin);
  AsciiTable table({"Candidate", "Params (M)", "GFLOPs (fwd)",
                    "Train time (s)", "Memory (MB)"});
  for (const auto& e : topo.entries()) {
    table.AddRow({e.model, AsciiTable::Num(e.cost.params_m, 2),
                  AsciiTable::Num(e.cost.gflops_fwd, 3),
                  AsciiTable::Num(e.cost.train_time_s, 1),
                  AsciiTable::Num(e.cost.memory_mb, 0)});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}
