// Reproduces Table I: parameters, per-round training time (Jetson Nano and
// Orin NX) and memory usage of ResNet-101 at x0.5 under SHeteroFL, DepthFL,
// FedRolex and FeDepth.
//
// Table I is the cost model's calibration anchor (see device/calibration),
// so the reproduction is exact by construction; the value of this binary is
// regression-testing the calibration and printing the paper-vs-model delta.
#include <cstdio>

#include "core/table.h"
#include "device/cost_model.h"
#include "device/device_profile.h"

namespace {

struct PaperRow {
  const char* method;
  double params_m, nano_s, orin_s, memory_mb;
};
constexpr PaperRow kPaper[] = {
    {"sheterofl", 10.66, 430.24, 212.72, 593},
    {"depthfl", 10.29, 515.93, 254.65, 1220},
    {"fedrolex", 10.75, 465.17, 233.56, 780},
    {"fedepth", 10.54, 450.64, 222.35, 631},
};

}  // namespace

int main() {
  using namespace mhbench;
  std::puts("Table I: ResNet-101 (x0.5) under four heterogeneity methods");
  std::puts("(paper values in parentheses; times are one training round)\n");

  device::CostModel cm(device::PaperDesc("resnet101"));
  const device::DeviceProfile nano = device::JetsonNano();
  const device::DeviceProfile orin = device::JetsonOrinNx();

  AsciiTable table({"Method", "Model", "Parameters(M)", "Time N (s)",
                    "Time O (s)", "Memory (MB)"});
  for (const auto& row : kPaper) {
    const auto cn = cm.Cost(row.method, 0.5, nano);
    const auto co = cm.Cost(row.method, 0.5, orin);
    table.AddRow({row.method, "ResNet101 (x0.5)",
                  AsciiTable::Num(cn.params_m, 2) + " (" +
                      AsciiTable::Num(row.params_m, 2) + ")",
                  AsciiTable::Num(cn.train_time_s, 2) + " (" +
                      AsciiTable::Num(row.nano_s, 2) + ")",
                  AsciiTable::Num(co.train_time_s, 2) + " (" +
                      AsciiTable::Num(row.orin_s, 2) + ")",
                  AsciiTable::Num(cn.memory_mb, 0) + " (" +
                      AsciiTable::Num(row.memory_mb, 0) + ")"});
  }
  std::fputs(table.Render().c_str(), stdout);
  return 0;
}
