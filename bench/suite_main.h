// Shared driver for the figure-shaped benches (Figures 4, 5, 6): run every
// MHFL algorithm plus the effectiveness baseline on each task under one
// constraint case, print the paper's 2x2 metric panel and accuracy curves,
// and dump a CSV next to the binary's working directory.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "bench_support/experiment.h"
#include "core/env.h"
#include "metrics/report.h"
#include "obs/manifest.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace mhbench::benchmain {

inline std::vector<std::string> MhflAlgorithms() {
  std::vector<std::string> names;
  for (const auto& info : algorithms::AllAlgorithms()) {
    if (info.name != "fedavg") names.push_back(info.name);
  }
  return names;
}

inline int RunConstraintFigure(const std::string& figure_id,
                               const std::string& title,
                               const std::string& constraint,
                               const std::vector<std::string>& tasks) {
  std::printf("%s: %s\n", figure_id.c_str(), title.c_str());
  std::printf(
      "(fast preset; scale with MHB_ROUNDS / MHB_CLIENTS / MHB_TRAIN / "
      "MHB_REPEATS)\n\n");

  // MHB_OBS_DIR=<dir> makes every figure emit telemetry: a run manifest
  // (manifest.json + per-round rounds.csv) and a Chrome trace per task,
  // under <dir>/<figure_id>-<task>/.  MHB_TRACE_SIM=1 adds sim-clock lanes.
  const std::string obs_dir = EnvString("MHB_OBS_DIR", "");

  std::vector<metrics::MetricBundle> all;
  for (const auto& task : tasks) {
    bench_support::SuiteOptions options;
    options.constraint = constraint;
    options.task = task;
    std::unique_ptr<obs::Tracer> tracer;
    std::unique_ptr<obs::Registry> registry;
    if (!obs_dir.empty()) {
      tracer = std::make_unique<obs::Tracer>();
      registry = std::make_unique<obs::Registry>();
      options.obs.tracer = tracer.get();
      options.obs.registry = registry.get();
      options.obs.sim_spans = EnvInt("MHB_TRACE_SIM", 0) != 0;
    }
    const auto bundles =
        bench_support::RunSuite(MhflAlgorithms(), options);
    std::fputs(
        metrics::RenderMetricPanel(constraint + " / " + task, bundles)
            .c_str(),
        stdout);
    std::fputs(
        metrics::RenderCurves("accuracy curves: " + task, bundles).c_str(),
        stdout);
    std::puts("");
    if (!obs_dir.empty()) {
      obs::RunManifest m;
      m.run_id = figure_id + "-" + task;
      m.tool = figure_id;
      m.git_describe = obs::GitDescribe();
      m.created_utc = obs::IsoTimestampUtc();
      m.seed = options.preset.seed;
      m.threads = options.preset.threads;
      m.config = {{"constraint", constraint},
                  {"task", task},
                  {"rounds", std::to_string(options.preset.rounds)},
                  {"clients", std::to_string(options.preset.clients)}};
      for (const auto& b : bundles) {
        m.metrics.emplace_back(b.algorithm + ".global_accuracy",
                               b.global_accuracy);
      }
      const std::string run_dir =
          obs::WriteRunManifest(obs_dir, m, registry.get());
      tracer->WriteChromeJson(run_dir + "/trace.json");
      tracer->WriteJsonl(run_dir + "/trace.jsonl");
      std::printf("[telemetry written to %s]\n", run_dir.c_str());
    }
    all.insert(all.end(), bundles.begin(), bundles.end());
  }

  const std::string csv_path =
      EnvString("MHB_CSV_DIR", ".") + "/" + figure_id + ".csv";
  std::ofstream csv(csv_path);
  if (csv.good()) {
    csv << metrics::ToCsv(all);
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace mhbench::benchmain
