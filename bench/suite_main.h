// Shared driver for the figure-shaped benches (Figures 4, 5, 6): run every
// MHFL algorithm plus the effectiveness baseline on each task under one
// constraint case, print the paper's 2x2 metric panel and accuracy curves,
// and dump a CSV next to the binary's working directory.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "algorithms/registry.h"
#include "bench_support/experiment.h"
#include "core/env.h"
#include "metrics/report.h"

namespace mhbench::benchmain {

inline std::vector<std::string> MhflAlgorithms() {
  std::vector<std::string> names;
  for (const auto& info : algorithms::AllAlgorithms()) {
    if (info.name != "fedavg") names.push_back(info.name);
  }
  return names;
}

inline int RunConstraintFigure(const std::string& figure_id,
                               const std::string& title,
                               const std::string& constraint,
                               const std::vector<std::string>& tasks) {
  std::printf("%s: %s\n", figure_id.c_str(), title.c_str());
  std::printf(
      "(fast preset; scale with MHB_ROUNDS / MHB_CLIENTS / MHB_TRAIN / "
      "MHB_REPEATS)\n\n");

  std::vector<metrics::MetricBundle> all;
  for (const auto& task : tasks) {
    bench_support::SuiteOptions options;
    options.constraint = constraint;
    options.task = task;
    const auto bundles =
        bench_support::RunSuite(MhflAlgorithms(), options);
    std::fputs(
        metrics::RenderMetricPanel(constraint + " / " + task, bundles)
            .c_str(),
        stdout);
    std::fputs(
        metrics::RenderCurves("accuracy curves: " + task, bundles).c_str(),
        stdout);
    std::puts("");
    all.insert(all.end(), bundles.begin(), bundles.end());
  }

  const std::string csv_path =
      EnvString("MHB_CSV_DIR", ".") + "/" + figure_id + ".csv";
  std::ofstream csv(csv_path);
  if (csv.good()) {
    csv << metrics::ToCsv(all);
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace mhbench::benchmain
