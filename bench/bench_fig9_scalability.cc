// Reproduces Figure 9: scalability — convergence accuracy and speed of a
// representative algorithm per heterogeneity level as the client population
// grows, under the memory-limited setting on CIFAR-100.
#include <map>

#include "core/table.h"
#include "suite_main.h"

int main() {
  using namespace mhbench;
  std::puts("Figure 9: scalability analysis (memory-limited, CIFAR-100)\n");

  const std::vector<int> client_counts = {6, 10, 16, 24};
  const std::vector<std::string> algorithms = {"sheterofl", "fedrolex",
                                               "depthfl", "fedepth"};

  std::vector<metrics::MetricBundle> all;
  AsciiTable summary({"Algorithm", "clients=6", "clients=10", "clients=16",
                      "clients=24"});
  std::map<std::string, std::vector<std::string>> rows;
  for (int clients : client_counts) {
    bench_support::SuiteOptions options;
    options.constraint = "memory";
    options.task = "cifar100";
    options.preset.clients = clients;
    // Keep per-client data constant as the population scales.
    options.preset.train_samples = clients * 40;
    const auto bundles = bench_support::RunSuite(algorithms, options);
    for (const auto& b : bundles) {
      rows[b.algorithm].push_back(AsciiTable::Num(b.global_accuracy, 3));
      all.push_back(b);
    }
    std::printf("[clients=%d done]\n", clients);
  }
  for (const auto& name : algorithms) {
    std::vector<std::string> row = {name};
    for (const auto& cell : rows[name]) row.push_back(cell);
    summary.AddRow(row);
  }
  std::puts("-- final accuracy vs client count --");
  std::fputs(summary.Render().c_str(), stdout);

  const std::string csv_path =
      EnvString("MHB_CSV_DIR", ".") + "/fig9_scalability.csv";
  std::ofstream csv(csv_path);
  if (csv.good()) {
    csv << metrics::ToCsv(all);
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  return 0;
}
