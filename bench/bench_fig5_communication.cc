// Reproduces Figure 5: communication-limited MHFL across all six tasks.
#include "suite_main.h"

int main() {
  using namespace mhbench;
  const std::vector<std::string> tasks = {
      "cifar10", "cifar100", "agnews", "stackoverflow", "harbox", "ucihar"};
  return benchmain::RunConstraintFigure("fig5_communication",
                                        "communication-limited MHFL",
                                        "communication", tasks);
}
