// Reproduces Table II: the platform's statistics — heterogeneity levels,
// algorithms, and the model/dataset grid per domain — generated from the
// live registries so the table cannot drift from the implementation.
#include <cstdio>
#include <string>

#include "algorithms/registry.h"
#include "core/table.h"
#include "models/zoo.h"

namespace {

std::string LevelName(mhbench::algorithms::HeteroLevel level) {
  using mhbench::algorithms::HeteroLevel;
  switch (level) {
    case HeteroLevel::kHomogeneous:
      return "Baseline";
    case HeteroLevel::kWidth:
      return "Width";
    case HeteroLevel::kDepth:
      return "Depth";
    case HeteroLevel::kTopology:
      return "Topology";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace mhbench;
  std::puts("Table II: statistics of the platform\n");

  AsciiTable algos({"Hetero level", "Algorithm"});
  for (const auto& info : algorithms::AllAlgorithms()) {
    algos.AddRow({LevelName(info.level), info.name});
  }
  std::fputs(algos.Render().c_str(), stdout);

  AsciiTable grid({"Dataset", "Domain", "Classes", "Primary model",
                   "Topology family"});
  for (const auto& task : models::AllTaskNames()) {
    const models::TaskModels tm = models::MakeTaskModels(task);
    std::string family;
    for (const auto& f : tm.topology) {
      if (!family.empty()) family += ", ";
      family += f->name();
    }
    const std::string domain =
        (task == "cifar10" || task == "cifar100") ? "CV"
        : (task == "agnews" || task == "stackoverflow") ? "NLP"
                                                        : "HAR";
    grid.AddRow({task, domain, std::to_string(models::TaskNumClasses(task)),
                 tm.primary->name(), family});
  }
  std::fputs(grid.Render().c_str(), stdout);
  std::puts(
      "\nRatios per width/depth variant: 100%, 75%, 50%, 25% (paper Table "
      "II).");
  return 0;
}
