// Google-benchmark micro-benchmarks of the primitives the platform's
// hot loops are built on: GEMM, convolution, sub-model gather/scatter,
// masked aggregation, and the cost model.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "device/cost_model.h"
#include "device/device_profile.h"
#include "fl/aggregator.h"
#include "models/zoo.h"
#include "nn/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace {

using namespace mhbench;

// Pins the kernel backend for the duration of one benchmark: the *Naive
// variants re-run the same workloads through the retained reference kernels,
// so speedup ratios (fast vs naive) come from one binary and one build.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend b)
      : prev_(kernels::CurrentBackend()) {
    kernels::SetBackend(b);
  }
  ~BackendGuard() { kernels::SetBackend(prev_); }

 private:
  kernels::Backend prev_;
};

void MatmulBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void BM_Matmul(benchmark::State& state) {
  MatmulBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  MatmulBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Threaded macro-tile GEMM at a given logical thread count T: a pool of
// T-1 workers plus the caller, mirroring the engine's ThreadPool sizing.
// T=1 installs no pool (serial fast path), so the /1 entry doubles as a
// no-overhead check against BM_Matmul.  bench_report.py pairs each
// /n/T entry against BM_Matmul/n and gates the speedup per thread count
// (entries where T exceeds the machine's CPUs are annotated and exempt).
void BM_MatmulThreaded(benchmark::State& state) {
  BackendGuard guard(kernels::Backend::kFast);
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  std::unique_ptr<core::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<core::ThreadPool>(threads - 1);
  core::ThreadPool* prev = kernels::SetGemmThreadPool(pool.get());
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  kernels::SetGemmThreadPool(prev);
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulThreaded)->Args({256, 1})->Args({256, 2})->Args({256, 4});

// Reduced-precision eval kernels (gemm.h), routed exactly the way the
// engine routes them: through an EvalPrecisionGuard around a regular
// kernels::Gemm call.  Paired against BM_Matmul (the f32 fast kernel) in
// bench_report.py.
void MatmulPrecisionBody(benchmark::State& state,
                         kernels::EvalPrecision precision) {
  BackendGuard guard(kernels::Backend::kFast);
  kernels::EvalPrecisionGuard precision_guard(precision);
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void BM_MatmulBf16(benchmark::State& state) {
  MatmulPrecisionBody(state, kernels::EvalPrecision::kBf16);
}
BENCHMARK(BM_MatmulBf16)->Arg(256);

void BM_MatmulInt8(benchmark::State& state) {
  MatmulPrecisionBody(state, kernels::EvalPrecision::kInt8);
}
BENCHMARK(BM_MatmulInt8)->Arg(256);

// Conv workload: N=8, Cin=8, Cout=16, 8x8 spatial, 3x3 stride-1 pad-1
// (output spatial = input).  Forward MACs = N*Cout*H*W*Cin*3*3; FLOPs =
// 2x that.  Items-processed carries the FLOP count so bench_report.py
// reports real GFLOP/s for the conv entries too.
constexpr long long kConvForwardFlops = 2LL * 8 * 16 * 8 * 8 * 8 * 3 * 3;

void Conv2dForwardBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  Rng rng(2);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({8, 8, 8, 8}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
    kernels::ResetThreadScratch();
  }
  state.SetItemsProcessed(state.iterations() * kConvForwardFlops);
}

void BM_Conv2dForward(benchmark::State& state) {
  Conv2dForwardBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardNaive(benchmark::State& state) {
  Conv2dForwardBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_Conv2dForwardNaive);

void Conv2dBackwardBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  Rng rng(3);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({8, 8, 8, 8}, rng);
  const Tensor y = conv.Forward(x, true);
  const Tensor g = Tensor::Randn(y.shape(), rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    benchmark::DoNotOptimize(conv.Backward(g));
    kernels::ResetThreadScratch();
  }
  // Backward runs two GEMMs of the forward's shape (dW and dX).
  state.SetItemsProcessed(state.iterations() * 2 * kConvForwardFlops);
}

void BM_Conv2dBackward(benchmark::State& state) {
  Conv2dBackwardBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  Conv2dBackwardBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_Conv2dBackwardNaive);

void BM_GatherSubmodel(benchmark::State& state) {
  Rng rng(4);
  const Tensor w = Tensor::Randn({64, 64, 3, 3}, rng);
  const ops::DimIndices idx = {models::PrefixIndices(64, 32),
                               models::PrefixIndices(64, 32), std::nullopt,
                               std::nullopt};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::GatherDims(w, idx));
  }
}
BENCHMARK(BM_GatherSubmodel);

void BM_ScatterAdd(benchmark::State& state) {
  Rng rng(5);
  Tensor dst({64, 64, 3, 3});
  const Tensor src = Tensor::Randn({32, 32, 3, 3}, rng);
  const ops::DimIndices idx = {models::PrefixIndices(64, 32),
                               models::PrefixIndices(64, 32), std::nullopt,
                               std::nullopt};
  for (auto _ : state) {
    ops::ScatterAddDims(dst, src, idx);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_ScatterAdd);

void BM_SubModelBuild(benchmark::State& state) {
  Rng rng(6);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec spec;
  spec.width_ratio = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.primary->Build(spec, rng));
  }
}
BENCHMARK(BM_SubModelBuild);

void BM_MaskedAggregationRound(benchmark::State& state) {
  Rng rng(7);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec full;
  full.multi_head = true;
  auto global = tm.primary->Build(full, rng);
  fl::ParamStore store = fl::ParamStore::FromModule(*global.net);
  std::vector<models::BuiltModel> clients;
  for (double r : {0.25, 0.5, 1.0}) {
    models::BuildSpec spec;
    spec.width_ratio = r;
    clients.push_back(tm.primary->Build(spec, rng));
  }
  for (auto _ : state) {
    fl::MaskedAverager avg;
    for (auto& c : clients) {
      avg.Accumulate(*c.net, c.mapping, 10.0, store);
    }
    avg.ApplyTo(store);
  }
}
BENCHMARK(BM_MaskedAggregationRound);

void BM_CostModel(benchmark::State& state) {
  const device::CostModel cm(device::PaperDesc("resnet101"));
  const device::DeviceProfile orin = device::JetsonOrinNx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.Cost("sheterofl", 0.5, orin));
  }
}
BENCHMARK(BM_CostModel);

}  // namespace

// BENCHMARK_MAIN() expanded so the run's JSON context records which
// micro-kernel ISA the runtime dispatch picked (bench_report.py copies it
// into BENCH_kernels.json; mhb_diff.py refuses cross-backend comparisons)
// and whether THIS binary was an optimized build.  The latter is the
// signal bench_report.py's debug refusal keys on: google-benchmark's own
// library_build_type describes the system libbenchmark, which can be a
// debug build even when the kernels under test are -O3.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("mhb_kernel_backend",
                              kernels::KernelBackendName());
#ifdef NDEBUG
  benchmark::AddCustomContext("mhb_build_type", "release");
#else
  benchmark::AddCustomContext("mhb_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
