// Google-benchmark micro-benchmarks of the primitives the platform's
// hot loops are built on: GEMM, convolution, sub-model gather/scatter,
// masked aggregation, and the cost model.
#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "device/cost_model.h"
#include "device/device_profile.h"
#include "fl/aggregator.h"
#include "models/zoo.h"
#include "nn/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/scratch.h"

namespace {

using namespace mhbench;

// Pins the kernel backend for the duration of one benchmark: the *Naive
// variants re-run the same workloads through the retained reference kernels,
// so speedup ratios (fast vs naive) come from one binary and one build.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend b)
      : prev_(kernels::CurrentBackend()) {
    kernels::SetBackend(b);
  }
  ~BackendGuard() { kernels::SetBackend(prev_); }

 private:
  kernels::Backend prev_;
};

void MatmulBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::Randn({n, n}, rng);
  const Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void BM_Matmul(benchmark::State& state) {
  MatmulBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  MatmulBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_MatmulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void Conv2dForwardBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  Rng rng(2);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({8, 8, 8, 8}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
    kernels::ResetThreadScratch();
  }
}

void BM_Conv2dForward(benchmark::State& state) {
  Conv2dForwardBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardNaive(benchmark::State& state) {
  Conv2dForwardBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_Conv2dForwardNaive);

void Conv2dBackwardBody(benchmark::State& state, kernels::Backend backend) {
  BackendGuard guard(backend);
  Rng rng(3);
  nn::Conv2d conv(8, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::Randn({8, 8, 8, 8}, rng);
  const Tensor y = conv.Forward(x, true);
  const Tensor g = Tensor::Randn(y.shape(), rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    benchmark::DoNotOptimize(conv.Backward(g));
    kernels::ResetThreadScratch();
  }
}

void BM_Conv2dBackward(benchmark::State& state) {
  Conv2dBackwardBody(state, kernels::Backend::kFast);
}
BENCHMARK(BM_Conv2dBackward);

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  Conv2dBackwardBody(state, kernels::Backend::kNaive);
}
BENCHMARK(BM_Conv2dBackwardNaive);

void BM_GatherSubmodel(benchmark::State& state) {
  Rng rng(4);
  const Tensor w = Tensor::Randn({64, 64, 3, 3}, rng);
  const ops::DimIndices idx = {models::PrefixIndices(64, 32),
                               models::PrefixIndices(64, 32), std::nullopt,
                               std::nullopt};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::GatherDims(w, idx));
  }
}
BENCHMARK(BM_GatherSubmodel);

void BM_ScatterAdd(benchmark::State& state) {
  Rng rng(5);
  Tensor dst({64, 64, 3, 3});
  const Tensor src = Tensor::Randn({32, 32, 3, 3}, rng);
  const ops::DimIndices idx = {models::PrefixIndices(64, 32),
                               models::PrefixIndices(64, 32), std::nullopt,
                               std::nullopt};
  for (auto _ : state) {
    ops::ScatterAddDims(dst, src, idx);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_ScatterAdd);

void BM_SubModelBuild(benchmark::State& state) {
  Rng rng(6);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec spec;
  spec.width_ratio = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.primary->Build(spec, rng));
  }
}
BENCHMARK(BM_SubModelBuild);

void BM_MaskedAggregationRound(benchmark::State& state) {
  Rng rng(7);
  const auto tm = models::MakeTaskModels("cifar100");
  models::BuildSpec full;
  full.multi_head = true;
  auto global = tm.primary->Build(full, rng);
  fl::ParamStore store = fl::ParamStore::FromModule(*global.net);
  std::vector<models::BuiltModel> clients;
  for (double r : {0.25, 0.5, 1.0}) {
    models::BuildSpec spec;
    spec.width_ratio = r;
    clients.push_back(tm.primary->Build(spec, rng));
  }
  for (auto _ : state) {
    fl::MaskedAverager avg;
    for (auto& c : clients) {
      avg.Accumulate(*c.net, c.mapping, 10.0, store);
    }
    avg.ApplyTo(store);
  }
}
BENCHMARK(BM_MaskedAggregationRound);

void BM_CostModel(benchmark::State& state) {
  const device::CostModel cm(device::PaperDesc("resnet101"));
  const device::DeviceProfile orin = device::JetsonOrinNx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.Cost("sheterofl", 0.5, orin));
  }
}
BENCHMARK(BM_CostModel);

}  // namespace

BENCHMARK_MAIN();
