// Reproduces Figure 6: memory-limited MHFL.  The paper restricts this case
// to the large-model tasks (ResNet-101 on CIFAR-100, ALBERT on Stack
// Overflow) since small HAR models fit any device.
#include "suite_main.h"

int main() {
  using namespace mhbench;
  const std::vector<std::string> tasks = {"cifar100", "stackoverflow"};
  return benchmain::RunConstraintFigure("fig6_memory", "memory-limited MHFL",
                                        "memory", tasks);
}
