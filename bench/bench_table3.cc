// Reproduces Table III: the edge devices the platform is built around, with
// the fitted effective throughputs the cost model assigns them (the paper
// lists processors and GPU memory; we additionally show the calibrated
// GFLOP/s that reproduce Table I's training times).
#include <cstdio>

#include "core/table.h"
#include "device/device_profile.h"

int main() {
  using namespace mhbench;
  std::puts("Table III: edge devices used in the platform construction\n");
  AsciiTable table({"Device", "Fitted GFLOP/s", "Bandwidth (Mbps)",
                    "Memory budget (MB)", "GPU"});
  for (const device::DeviceProfile& dev :
       {device::JetsonOrinNx(), device::JetsonTx2Nx(), device::JetsonNano(),
        device::RaspberryPi4()}) {
    table.AddRow({dev.name, AsciiTable::Num(dev.gflops, 2),
                  AsciiTable::Num(dev.bandwidth_mbps, 0),
                  AsciiTable::Num(dev.memory_mb, 0),
                  dev.has_gpu ? "yes" : "no"});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::puts(
      "\nOrin NX / Nano throughputs are fitted to Table I (the Orin/Nano\n"
      "training-time ratio there is ~2.02x); TX2 NX and Raspberry Pi 4B\n"
      "are interpolated/extrapolated (see device/calibration.cc).");
  return 0;
}
