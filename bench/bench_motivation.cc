// Motivation study (the paper's Section I argument, beyond its figures):
// why constraint-aware model assignment matters at all.
//
// The literature's proportional splitting ("x0.5 of the model") ignores the
// actual device: under a synchronous round deadline, slow devices carrying
// oversized models become stragglers and are dropped, losing their data.
// The computation-limited builder sizes each model to its device, so every
// client makes the deadline.  This bench runs both assignment policies
// under the *same* deadline and reports drop rates and accuracy.
#include <algorithm>
#include <cstdio>

#include "bench_support/experiment.h"
#include "constraints/computation_limited.h"
#include "core/table.h"
#include "device/ima_fleet.h"
#include "metrics/report.h"

int main() {
  using namespace mhbench;
  std::puts(
      "Motivation: proportional splitting vs computation-limited assignment"
      "\nunder a synchronous round deadline (cifar10)\n");

  bench_support::SuiteOptions base;
  base.task = "cifar10";

  // The deadline the computation-limited builder equalizes compute to,
  // plus headroom for the full model's upload/download at the slowest
  // bandwidth in the fleet (the engine's deadline covers compute + comm).
  device::FleetConfig fcfg;
  fcfg.num_clients = base.preset.clients;
  fcfg.seed = base.fleet_seed;
  const device::Fleet fleet = device::SampleFleet(fcfg);
  const double compute_deadline =
      constraints::BuildComputationLimited("sheterofl", base.task, fleet)
          .compute_deadline_s;
  double worst_comm = 0.0;
  {
    const device::PaperTaskDescs descs =
        device::PaperDescsForTask(base.task);
    device::CostModel cm(descs.primary);
    for (const auto& dev : fleet) {
      device::DeviceProfile p;
      p.gflops = dev.gflops;
      p.bandwidth_mbps = dev.bandwidth_mbps;
      worst_comm =
          std::max(worst_comm, cm.Cost("sheterofl", 1.0, p).comm_time_s);
    }
  }
  const double deadline = compute_deadline + worst_comm;
  std::printf(
      "round deadline: %.1f s (fast-quartile full-model compute %.1f s + "
      "worst-case full-model comm %.1f s)\n\n",
      deadline, compute_deadline, worst_comm);

  AsciiTable table({"Assignment policy", "Algorithm", "Straggler drop rate",
                    "Global accuracy"});
  for (const char* constraint : {"none", "computation"}) {
    for (const char* algorithm : {"sheterofl", "depthfl"}) {
      bench_support::SuiteOptions options = base;
      options.constraint = constraint;
      options.round_deadline_s = deadline;
      const auto bundle = bench_support::RunOne(algorithm, options);
      table.AddRow({std::string(constraint) == "none"
                        ? "proportional (literature)"
                        : "computation-limited (paper)",
                    algorithm,
                    AsciiTable::Num(metrics::StragglerDropRate(bundle) * 100,
                                    1) +
                        "%",
                    AsciiTable::Num(bundle.global_accuracy, 3)});
    }
  }
  std::fputs(table.Render().c_str(), stdout);
  std::puts(
      "\nProportional splitting assigns model sizes blind to device speed,\n"
      "so slow devices miss the deadline and their updates are lost;\n"
      "constraint-aware assignment keeps (nearly) everyone in the round.");
  return 0;
}
