# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;26;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fl_test "/root/repo/build/tests/fl_test")
set_tests_properties(fl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;31;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(algorithms_test "/root/repo/build/tests/algorithms_test")
set_tests_properties(algorithms_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;41;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(device_test "/root/repo/build/tests/device_test")
set_tests_properties(device_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;46;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(constraints_test "/root/repo/build/tests/constraints_test")
set_tests_properties(constraints_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;51;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_test "/root/repo/build/tests/metrics_test")
set_tests_properties(metrics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;55;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bench_support_test "/root/repo/build/tests/bench_support_test")
set_tests_properties(bench_support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;59;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/tests/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;70;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;86;mhb_add_test;/root/repo/tests/CMakeLists.txt;0;")
