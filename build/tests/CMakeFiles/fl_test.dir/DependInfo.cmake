
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/aggregator_test.cc" "tests/CMakeFiles/fl_test.dir/fl/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/aggregator_test.cc.o.d"
  "/root/repo/tests/fl/availability_test.cc" "tests/CMakeFiles/fl_test.dir/fl/availability_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/availability_test.cc.o.d"
  "/root/repo/tests/fl/checkpoint_straggler_test.cc" "tests/CMakeFiles/fl_test.dir/fl/checkpoint_straggler_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/checkpoint_straggler_test.cc.o.d"
  "/root/repo/tests/fl/engine_test.cc" "tests/CMakeFiles/fl_test.dir/fl/engine_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/engine_test.cc.o.d"
  "/root/repo/tests/fl/evaluation_test.cc" "tests/CMakeFiles/fl_test.dir/fl/evaluation_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/evaluation_test.cc.o.d"
  "/root/repo/tests/fl/param_store_test.cc" "tests/CMakeFiles/fl_test.dir/fl/param_store_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/param_store_test.cc.o.d"
  "/root/repo/tests/fl/server_test.cc" "tests/CMakeFiles/fl_test.dir/fl/server_test.cc.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/server_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
