file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl/aggregator_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/aggregator_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/availability_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/availability_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/checkpoint_straggler_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/checkpoint_straggler_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/engine_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/engine_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/evaluation_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/evaluation_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/param_store_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/param_store_test.cc.o.d"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o"
  "CMakeFiles/fl_test.dir/fl/server_test.cc.o.d"
  "fl_test"
  "fl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
