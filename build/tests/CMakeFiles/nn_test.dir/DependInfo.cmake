
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/activation_test.cc" "tests/CMakeFiles/nn_test.dir/nn/activation_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/activation_test.cc.o.d"
  "/root/repo/tests/nn/adam_test.cc" "tests/CMakeFiles/nn_test.dir/nn/adam_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/adam_test.cc.o.d"
  "/root/repo/tests/nn/attention_test.cc" "tests/CMakeFiles/nn_test.dir/nn/attention_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/attention_test.cc.o.d"
  "/root/repo/tests/nn/conv_test.cc" "tests/CMakeFiles/nn_test.dir/nn/conv_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/conv_test.cc.o.d"
  "/root/repo/tests/nn/edge_cases_test.cc" "tests/CMakeFiles/nn_test.dir/nn/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/edge_cases_test.cc.o.d"
  "/root/repo/tests/nn/gradient_check_test.cc" "tests/CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o.d"
  "/root/repo/tests/nn/linear_test.cc" "tests/CMakeFiles/nn_test.dir/nn/linear_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/linear_test.cc.o.d"
  "/root/repo/tests/nn/loss_test.cc" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cc.o.d"
  "/root/repo/tests/nn/lr_schedule_test.cc" "tests/CMakeFiles/nn_test.dir/nn/lr_schedule_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/lr_schedule_test.cc.o.d"
  "/root/repo/tests/nn/norm_test.cc" "tests/CMakeFiles/nn_test.dir/nn/norm_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/norm_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/pool_test.cc" "tests/CMakeFiles/nn_test.dir/nn/pool_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/pool_test.cc.o.d"
  "/root/repo/tests/nn/training_test.cc" "tests/CMakeFiles/nn_test.dir/nn/training_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/training_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
