file(REMOVE_RECURSE
  "CMakeFiles/nn_test.dir/nn/activation_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/activation_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/adam_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/adam_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/attention_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/attention_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/conv_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/conv_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/edge_cases_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/edge_cases_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/gradient_check_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/linear_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/linear_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/loss_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/loss_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/lr_schedule_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/lr_schedule_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/norm_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/norm_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/pool_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/pool_test.cc.o.d"
  "CMakeFiles/nn_test.dir/nn/training_test.cc.o"
  "CMakeFiles/nn_test.dir/nn/training_test.cc.o.d"
  "nn_test"
  "nn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
