file(REMOVE_RECURSE
  "CMakeFiles/models_test.dir/models/extended_families_test.cc.o"
  "CMakeFiles/models_test.dir/models/extended_families_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/families_test.cc.o"
  "CMakeFiles/models_test.dir/models/families_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/index_map_test.cc.o"
  "CMakeFiles/models_test.dir/models/index_map_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/slicing_property_test.cc.o"
  "CMakeFiles/models_test.dir/models/slicing_property_test.cc.o.d"
  "models_test"
  "models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
