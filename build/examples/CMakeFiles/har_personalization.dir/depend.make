# Empty dependencies file for har_personalization.
# This may be replaced when dependencies are built.
