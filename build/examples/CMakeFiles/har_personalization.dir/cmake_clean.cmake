file(REMOVE_RECURSE
  "CMakeFiles/har_personalization.dir/har_personalization.cpp.o"
  "CMakeFiles/har_personalization.dir/har_personalization.cpp.o.d"
  "har_personalization"
  "har_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/har_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
