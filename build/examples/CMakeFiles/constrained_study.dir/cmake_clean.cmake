file(REMOVE_RECURSE
  "CMakeFiles/constrained_study.dir/constrained_study.cpp.o"
  "CMakeFiles/constrained_study.dir/constrained_study.cpp.o.d"
  "constrained_study"
  "constrained_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
