# Empty compiler generated dependencies file for constrained_study.
# This may be replaced when dependencies are built.
