file(REMOVE_RECURSE
  "CMakeFiles/mixed_topology_cv.dir/mixed_topology_cv.cpp.o"
  "CMakeFiles/mixed_topology_cv.dir/mixed_topology_cv.cpp.o.d"
  "mixed_topology_cv"
  "mixed_topology_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_topology_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
