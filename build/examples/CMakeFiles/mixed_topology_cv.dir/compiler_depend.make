# Empty compiler generated dependencies file for mixed_topology_cv.
# This may be replaced when dependencies are built.
