file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_combinations.dir/bench_fig7_combinations.cc.o"
  "CMakeFiles/bench_fig7_combinations.dir/bench_fig7_combinations.cc.o.d"
  "bench_fig7_combinations"
  "bench_fig7_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
