# Empty dependencies file for bench_fig7_combinations.
# This may be replaced when dependencies are built.
