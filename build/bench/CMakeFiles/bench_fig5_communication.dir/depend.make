# Empty dependencies file for bench_fig5_communication.
# This may be replaced when dependencies are built.
