# Empty compiler generated dependencies file for bench_fig3_model_pool.
# This may be replaced when dependencies are built.
