file(REMOVE_RECURSE
  "libmhb_bench_support.a"
)
