# Empty compiler generated dependencies file for mhb_bench_support.
# This may be replaced when dependencies are built.
