file(REMOVE_RECURSE
  "CMakeFiles/mhb_bench_support.dir/bench_support/experiment.cc.o"
  "CMakeFiles/mhb_bench_support.dir/bench_support/experiment.cc.o.d"
  "CMakeFiles/mhb_bench_support.dir/bench_support/presets.cc.o"
  "CMakeFiles/mhb_bench_support.dir/bench_support/presets.cc.o.d"
  "libmhb_bench_support.a"
  "libmhb_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
