file(REMOVE_RECURSE
  "CMakeFiles/mhb_fl.dir/fl/aggregator.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/aggregator.cc.o.d"
  "CMakeFiles/mhb_fl.dir/fl/client.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/client.cc.o.d"
  "CMakeFiles/mhb_fl.dir/fl/engine.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/engine.cc.o.d"
  "CMakeFiles/mhb_fl.dir/fl/evaluation.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/evaluation.cc.o.d"
  "CMakeFiles/mhb_fl.dir/fl/param_store.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/param_store.cc.o.d"
  "CMakeFiles/mhb_fl.dir/fl/server.cc.o"
  "CMakeFiles/mhb_fl.dir/fl/server.cc.o.d"
  "libmhb_fl.a"
  "libmhb_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
