file(REMOVE_RECURSE
  "libmhb_fl.a"
)
