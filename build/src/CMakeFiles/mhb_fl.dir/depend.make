# Empty dependencies file for mhb_fl.
# This may be replaced when dependencies are built.
