
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregator.cc" "src/CMakeFiles/mhb_fl.dir/fl/aggregator.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/aggregator.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/CMakeFiles/mhb_fl.dir/fl/client.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/client.cc.o.d"
  "/root/repo/src/fl/engine.cc" "src/CMakeFiles/mhb_fl.dir/fl/engine.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/engine.cc.o.d"
  "/root/repo/src/fl/evaluation.cc" "src/CMakeFiles/mhb_fl.dir/fl/evaluation.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/evaluation.cc.o.d"
  "/root/repo/src/fl/param_store.cc" "src/CMakeFiles/mhb_fl.dir/fl/param_store.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/param_store.cc.o.d"
  "/root/repo/src/fl/server.cc" "src/CMakeFiles/mhb_fl.dir/fl/server.cc.o" "gcc" "src/CMakeFiles/mhb_fl.dir/fl/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
