
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mhb_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/CMakeFiles/mhb_data.dir/data/loader.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/loader.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/CMakeFiles/mhb_data.dir/data/partition.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/partition.cc.o.d"
  "/root/repo/src/data/synthetic_har.cc" "src/CMakeFiles/mhb_data.dir/data/synthetic_har.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/synthetic_har.cc.o.d"
  "/root/repo/src/data/synthetic_text.cc" "src/CMakeFiles/mhb_data.dir/data/synthetic_text.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/synthetic_text.cc.o.d"
  "/root/repo/src/data/synthetic_vision.cc" "src/CMakeFiles/mhb_data.dir/data/synthetic_vision.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/synthetic_vision.cc.o.d"
  "/root/repo/src/data/tasks.cc" "src/CMakeFiles/mhb_data.dir/data/tasks.cc.o" "gcc" "src/CMakeFiles/mhb_data.dir/data/tasks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
