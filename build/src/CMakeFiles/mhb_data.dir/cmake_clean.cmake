file(REMOVE_RECURSE
  "CMakeFiles/mhb_data.dir/data/dataset.cc.o"
  "CMakeFiles/mhb_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/loader.cc.o"
  "CMakeFiles/mhb_data.dir/data/loader.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/partition.cc.o"
  "CMakeFiles/mhb_data.dir/data/partition.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/synthetic_har.cc.o"
  "CMakeFiles/mhb_data.dir/data/synthetic_har.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/synthetic_text.cc.o"
  "CMakeFiles/mhb_data.dir/data/synthetic_text.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/synthetic_vision.cc.o"
  "CMakeFiles/mhb_data.dir/data/synthetic_vision.cc.o.d"
  "CMakeFiles/mhb_data.dir/data/tasks.cc.o"
  "CMakeFiles/mhb_data.dir/data/tasks.cc.o.d"
  "libmhb_data.a"
  "libmhb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
