file(REMOVE_RECURSE
  "libmhb_data.a"
)
