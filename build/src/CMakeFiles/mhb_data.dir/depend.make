# Empty dependencies file for mhb_data.
# This may be replaced when dependencies are built.
