file(REMOVE_RECURSE
  "CMakeFiles/mhb_metrics.dir/metrics/recorder.cc.o"
  "CMakeFiles/mhb_metrics.dir/metrics/recorder.cc.o.d"
  "CMakeFiles/mhb_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/mhb_metrics.dir/metrics/report.cc.o.d"
  "libmhb_metrics.a"
  "libmhb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
