file(REMOVE_RECURSE
  "libmhb_metrics.a"
)
