# Empty dependencies file for mhb_metrics.
# This may be replaced when dependencies are built.
