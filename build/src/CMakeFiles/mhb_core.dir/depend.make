# Empty dependencies file for mhb_core.
# This may be replaced when dependencies are built.
