file(REMOVE_RECURSE
  "libmhb_core.a"
)
