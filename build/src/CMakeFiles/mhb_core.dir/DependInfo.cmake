
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csv.cc" "src/CMakeFiles/mhb_core.dir/core/csv.cc.o" "gcc" "src/CMakeFiles/mhb_core.dir/core/csv.cc.o.d"
  "/root/repo/src/core/env.cc" "src/CMakeFiles/mhb_core.dir/core/env.cc.o" "gcc" "src/CMakeFiles/mhb_core.dir/core/env.cc.o.d"
  "/root/repo/src/core/logging.cc" "src/CMakeFiles/mhb_core.dir/core/logging.cc.o" "gcc" "src/CMakeFiles/mhb_core.dir/core/logging.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/mhb_core.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/mhb_core.dir/core/rng.cc.o.d"
  "/root/repo/src/core/table.cc" "src/CMakeFiles/mhb_core.dir/core/table.cc.o" "gcc" "src/CMakeFiles/mhb_core.dir/core/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
