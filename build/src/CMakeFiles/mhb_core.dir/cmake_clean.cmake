file(REMOVE_RECURSE
  "CMakeFiles/mhb_core.dir/core/csv.cc.o"
  "CMakeFiles/mhb_core.dir/core/csv.cc.o.d"
  "CMakeFiles/mhb_core.dir/core/env.cc.o"
  "CMakeFiles/mhb_core.dir/core/env.cc.o.d"
  "CMakeFiles/mhb_core.dir/core/logging.cc.o"
  "CMakeFiles/mhb_core.dir/core/logging.cc.o.d"
  "CMakeFiles/mhb_core.dir/core/rng.cc.o"
  "CMakeFiles/mhb_core.dir/core/rng.cc.o.d"
  "CMakeFiles/mhb_core.dir/core/table.cc.o"
  "CMakeFiles/mhb_core.dir/core/table.cc.o.d"
  "libmhb_core.a"
  "libmhb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
