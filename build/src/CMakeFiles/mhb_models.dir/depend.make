# Empty dependencies file for mhb_models.
# This may be replaced when dependencies are built.
