
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/albert_lite.cc" "src/CMakeFiles/mhb_models.dir/models/albert_lite.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/albert_lite.cc.o.d"
  "/root/repo/src/models/efficientnet_like.cc" "src/CMakeFiles/mhb_models.dir/models/efficientnet_like.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/efficientnet_like.cc.o.d"
  "/root/repo/src/models/googlenet_like.cc" "src/CMakeFiles/mhb_models.dir/models/googlenet_like.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/googlenet_like.cc.o.d"
  "/root/repo/src/models/har_cnn.cc" "src/CMakeFiles/mhb_models.dir/models/har_cnn.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/har_cnn.cc.o.d"
  "/root/repo/src/models/index_map.cc" "src/CMakeFiles/mhb_models.dir/models/index_map.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/index_map.cc.o.d"
  "/root/repo/src/models/mobilenet_like.cc" "src/CMakeFiles/mhb_models.dir/models/mobilenet_like.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/mobilenet_like.cc.o.d"
  "/root/repo/src/models/model_spec.cc" "src/CMakeFiles/mhb_models.dir/models/model_spec.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/model_spec.cc.o.d"
  "/root/repo/src/models/resnet_like.cc" "src/CMakeFiles/mhb_models.dir/models/resnet_like.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/resnet_like.cc.o.d"
  "/root/repo/src/models/transformer_lite.cc" "src/CMakeFiles/mhb_models.dir/models/transformer_lite.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/transformer_lite.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/CMakeFiles/mhb_models.dir/models/zoo.cc.o" "gcc" "src/CMakeFiles/mhb_models.dir/models/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
