file(REMOVE_RECURSE
  "libmhb_models.a"
)
