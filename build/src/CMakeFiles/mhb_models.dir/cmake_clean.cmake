file(REMOVE_RECURSE
  "CMakeFiles/mhb_models.dir/models/albert_lite.cc.o"
  "CMakeFiles/mhb_models.dir/models/albert_lite.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/efficientnet_like.cc.o"
  "CMakeFiles/mhb_models.dir/models/efficientnet_like.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/googlenet_like.cc.o"
  "CMakeFiles/mhb_models.dir/models/googlenet_like.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/har_cnn.cc.o"
  "CMakeFiles/mhb_models.dir/models/har_cnn.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/index_map.cc.o"
  "CMakeFiles/mhb_models.dir/models/index_map.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/mobilenet_like.cc.o"
  "CMakeFiles/mhb_models.dir/models/mobilenet_like.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/model_spec.cc.o"
  "CMakeFiles/mhb_models.dir/models/model_spec.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/resnet_like.cc.o"
  "CMakeFiles/mhb_models.dir/models/resnet_like.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/transformer_lite.cc.o"
  "CMakeFiles/mhb_models.dir/models/transformer_lite.cc.o.d"
  "CMakeFiles/mhb_models.dir/models/zoo.cc.o"
  "CMakeFiles/mhb_models.dir/models/zoo.cc.o.d"
  "libmhb_models.a"
  "libmhb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
