# Empty compiler generated dependencies file for mhb_models.
# This may be replaced when dependencies are built.
