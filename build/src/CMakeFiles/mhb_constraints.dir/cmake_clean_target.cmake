file(REMOVE_RECURSE
  "libmhb_constraints.a"
)
