file(REMOVE_RECURSE
  "CMakeFiles/mhb_constraints.dir/constraints/assignment.cc.o"
  "CMakeFiles/mhb_constraints.dir/constraints/assignment.cc.o.d"
  "CMakeFiles/mhb_constraints.dir/constraints/combined.cc.o"
  "CMakeFiles/mhb_constraints.dir/constraints/combined.cc.o.d"
  "CMakeFiles/mhb_constraints.dir/constraints/communication_limited.cc.o"
  "CMakeFiles/mhb_constraints.dir/constraints/communication_limited.cc.o.d"
  "CMakeFiles/mhb_constraints.dir/constraints/computation_limited.cc.o"
  "CMakeFiles/mhb_constraints.dir/constraints/computation_limited.cc.o.d"
  "CMakeFiles/mhb_constraints.dir/constraints/memory_limited.cc.o"
  "CMakeFiles/mhb_constraints.dir/constraints/memory_limited.cc.o.d"
  "libmhb_constraints.a"
  "libmhb_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
