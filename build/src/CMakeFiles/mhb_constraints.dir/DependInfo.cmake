
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/assignment.cc" "src/CMakeFiles/mhb_constraints.dir/constraints/assignment.cc.o" "gcc" "src/CMakeFiles/mhb_constraints.dir/constraints/assignment.cc.o.d"
  "/root/repo/src/constraints/combined.cc" "src/CMakeFiles/mhb_constraints.dir/constraints/combined.cc.o" "gcc" "src/CMakeFiles/mhb_constraints.dir/constraints/combined.cc.o.d"
  "/root/repo/src/constraints/communication_limited.cc" "src/CMakeFiles/mhb_constraints.dir/constraints/communication_limited.cc.o" "gcc" "src/CMakeFiles/mhb_constraints.dir/constraints/communication_limited.cc.o.d"
  "/root/repo/src/constraints/computation_limited.cc" "src/CMakeFiles/mhb_constraints.dir/constraints/computation_limited.cc.o" "gcc" "src/CMakeFiles/mhb_constraints.dir/constraints/computation_limited.cc.o.d"
  "/root/repo/src/constraints/memory_limited.cc" "src/CMakeFiles/mhb_constraints.dir/constraints/memory_limited.cc.o" "gcc" "src/CMakeFiles/mhb_constraints.dir/constraints/memory_limited.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
