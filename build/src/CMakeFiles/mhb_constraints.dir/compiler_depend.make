# Empty compiler generated dependencies file for mhb_constraints.
# This may be replaced when dependencies are built.
