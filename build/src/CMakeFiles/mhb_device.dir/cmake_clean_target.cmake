file(REMOVE_RECURSE
  "libmhb_device.a"
)
