# Empty dependencies file for mhb_device.
# This may be replaced when dependencies are built.
