
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cc" "src/CMakeFiles/mhb_device.dir/device/calibration.cc.o" "gcc" "src/CMakeFiles/mhb_device.dir/device/calibration.cc.o.d"
  "/root/repo/src/device/cost_model.cc" "src/CMakeFiles/mhb_device.dir/device/cost_model.cc.o" "gcc" "src/CMakeFiles/mhb_device.dir/device/cost_model.cc.o.d"
  "/root/repo/src/device/device_profile.cc" "src/CMakeFiles/mhb_device.dir/device/device_profile.cc.o" "gcc" "src/CMakeFiles/mhb_device.dir/device/device_profile.cc.o.d"
  "/root/repo/src/device/ima_fleet.cc" "src/CMakeFiles/mhb_device.dir/device/ima_fleet.cc.o" "gcc" "src/CMakeFiles/mhb_device.dir/device/ima_fleet.cc.o.d"
  "/root/repo/src/device/model_pool.cc" "src/CMakeFiles/mhb_device.dir/device/model_pool.cc.o" "gcc" "src/CMakeFiles/mhb_device.dir/device/model_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
