file(REMOVE_RECURSE
  "CMakeFiles/mhb_device.dir/device/calibration.cc.o"
  "CMakeFiles/mhb_device.dir/device/calibration.cc.o.d"
  "CMakeFiles/mhb_device.dir/device/cost_model.cc.o"
  "CMakeFiles/mhb_device.dir/device/cost_model.cc.o.d"
  "CMakeFiles/mhb_device.dir/device/device_profile.cc.o"
  "CMakeFiles/mhb_device.dir/device/device_profile.cc.o.d"
  "CMakeFiles/mhb_device.dir/device/ima_fleet.cc.o"
  "CMakeFiles/mhb_device.dir/device/ima_fleet.cc.o.d"
  "CMakeFiles/mhb_device.dir/device/model_pool.cc.o"
  "CMakeFiles/mhb_device.dir/device/model_pool.cc.o.d"
  "libmhb_device.a"
  "libmhb_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
