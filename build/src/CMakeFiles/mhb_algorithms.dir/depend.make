# Empty dependencies file for mhb_algorithms.
# This may be replaced when dependencies are built.
