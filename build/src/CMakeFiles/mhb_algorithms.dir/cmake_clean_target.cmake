file(REMOVE_RECURSE
  "libmhb_algorithms.a"
)
