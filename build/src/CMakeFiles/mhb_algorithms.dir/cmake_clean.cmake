file(REMOVE_RECURSE
  "CMakeFiles/mhb_algorithms.dir/algorithms/algorithm.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/algorithm.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/depthfl.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/depthfl.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedavg.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedavg.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedepth.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedepth.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedet.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedet.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedproto.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedproto.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedrolex.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fedrolex.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fjord.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/fjord.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/inclusivefl.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/inclusivefl.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/registry.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/registry.cc.o.d"
  "CMakeFiles/mhb_algorithms.dir/algorithms/sheterofl.cc.o"
  "CMakeFiles/mhb_algorithms.dir/algorithms/sheterofl.cc.o.d"
  "libmhb_algorithms.a"
  "libmhb_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
