
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/algorithm.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/algorithm.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/algorithm.cc.o.d"
  "/root/repo/src/algorithms/depthfl.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/depthfl.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/depthfl.cc.o.d"
  "/root/repo/src/algorithms/fedavg.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedavg.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedavg.cc.o.d"
  "/root/repo/src/algorithms/fedepth.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedepth.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedepth.cc.o.d"
  "/root/repo/src/algorithms/fedet.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedet.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedet.cc.o.d"
  "/root/repo/src/algorithms/fedproto.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedproto.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedproto.cc.o.d"
  "/root/repo/src/algorithms/fedrolex.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedrolex.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fedrolex.cc.o.d"
  "/root/repo/src/algorithms/fjord.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fjord.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/fjord.cc.o.d"
  "/root/repo/src/algorithms/inclusivefl.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/inclusivefl.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/inclusivefl.cc.o.d"
  "/root/repo/src/algorithms/registry.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/registry.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/registry.cc.o.d"
  "/root/repo/src/algorithms/sheterofl.cc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/sheterofl.cc.o" "gcc" "src/CMakeFiles/mhb_algorithms.dir/algorithms/sheterofl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
