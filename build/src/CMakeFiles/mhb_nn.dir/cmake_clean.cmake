file(REMOVE_RECURSE
  "CMakeFiles/mhb_nn.dir/nn/activation.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/activation.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/attention.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/attention.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/composite.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/composite.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/conv.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/conv.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/dropout.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/dropout.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/embedding.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/embedding.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/init.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/linear.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/loss.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/lr_schedule.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/lr_schedule.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/module.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/norm.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/norm.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/mhb_nn.dir/nn/pool.cc.o"
  "CMakeFiles/mhb_nn.dir/nn/pool.cc.o.d"
  "libmhb_nn.a"
  "libmhb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
