
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/mhb_nn.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/mhb_nn.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/composite.cc" "src/CMakeFiles/mhb_nn.dir/nn/composite.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/composite.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/mhb_nn.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/mhb_nn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/mhb_nn.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/mhb_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/mhb_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/mhb_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lr_schedule.cc" "src/CMakeFiles/mhb_nn.dir/nn/lr_schedule.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/lr_schedule.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/mhb_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/CMakeFiles/mhb_nn.dir/nn/norm.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/norm.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/mhb_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/CMakeFiles/mhb_nn.dir/nn/pool.cc.o" "gcc" "src/CMakeFiles/mhb_nn.dir/nn/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mhb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mhb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
