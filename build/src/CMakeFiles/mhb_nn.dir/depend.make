# Empty dependencies file for mhb_nn.
# This may be replaced when dependencies are built.
