file(REMOVE_RECURSE
  "libmhb_nn.a"
)
