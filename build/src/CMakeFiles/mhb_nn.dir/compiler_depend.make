# Empty compiler generated dependencies file for mhb_nn.
# This may be replaced when dependencies are built.
