file(REMOVE_RECURSE
  "CMakeFiles/mhb_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/mhb_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/mhb_tensor.dir/tensor/serialize.cc.o"
  "CMakeFiles/mhb_tensor.dir/tensor/serialize.cc.o.d"
  "CMakeFiles/mhb_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/mhb_tensor.dir/tensor/tensor.cc.o.d"
  "libmhb_tensor.a"
  "libmhb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
