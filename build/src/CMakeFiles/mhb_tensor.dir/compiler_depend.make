# Empty compiler generated dependencies file for mhb_tensor.
# This may be replaced when dependencies are built.
