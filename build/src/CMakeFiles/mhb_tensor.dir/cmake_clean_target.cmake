file(REMOVE_RECURSE
  "libmhb_tensor.a"
)
