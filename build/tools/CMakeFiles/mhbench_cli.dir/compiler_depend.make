# Empty compiler generated dependencies file for mhbench_cli.
# This may be replaced when dependencies are built.
