file(REMOVE_RECURSE
  "CMakeFiles/mhbench_cli.dir/mhbench.cc.o"
  "CMakeFiles/mhbench_cli.dir/mhbench.cc.o.d"
  "mhbench"
  "mhbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
