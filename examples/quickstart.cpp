// Quickstart: federate a width-heterogeneous population with SHeteroFL on
// the synthetic CIFAR-10 task and compare against homogeneous FedAvg.
//
//   $ ./examples/quickstart
//
// Walks through the core public API: make a task, pick model families,
// construct an algorithm, run the engine, read the metrics.
#include <cstdio>

#include "algorithms/registry.h"
#include "core/table.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

int main() {
  using namespace mhbench;

  // 1. A benchmark task: synthetic CIFAR-10 analogue, 8 clients.
  data::TaskConfig tcfg;
  tcfg.train_samples = 400;
  tcfg.test_samples = 160;
  tcfg.num_clients = 8;
  const data::Task task = data::MakeTask("cifar10", tcfg);

  // 2. Device heterogeneity: cycle the paper's ratio ladder (25%..100%)
  //    over the clients — the classic proportional-splitting setup.
  const std::vector<fl::ClientAssignment> assignments =
      fl::UniformCapacityAssignments(task.num_clients,
                                     algorithms::RatioLadder());

  // 3. Model families for the task (MobileNetV2 analogue on CIFAR-10).
  const models::TaskModels tm = models::MakeTaskModels(task.name);

  // 4. Run two algorithms through the same engine.
  AsciiTable table({"Algorithm", "Global accuracy", "Stability (var)"});
  for (const char* name : {"fedavg", "sheterofl"}) {
    algorithms::AlgorithmOptions aopts;
    aopts.fedavg_ratio = 0.25;  // homogeneous baseline = smallest model
    auto algorithm = algorithms::MakeAlgorithm(name, tm, aopts);

    fl::FlConfig cfg;
    cfg.rounds = 16;
    cfg.sample_fraction = 0.5;
    cfg.eval_every = 4;
    fl::FlEngine engine(task, cfg, assignments, *algorithm);
    const fl::RunResult result = engine.Run();

    table.AddRow({name, AsciiTable::Num(result.final_accuracy, 3),
                  AsciiTable::Num(result.StabilityVariance(), 4)});
    std::printf("%s: accuracy curve:", name);
    for (const auto& r : result.curve) {
      std::printf(" %.3f", r.global_acc);
    }
    std::printf("\n");
  }
  std::puts("");
  std::fputs(table.Render().c_str(), stdout);
  std::puts(
      "\nSHeteroFL lets the large devices contribute full-width updates\n"
      "while the 25% devices still participate — the heterogeneous run\n"
      "should beat the smallest-common-model FedAvg baseline.");
  return 0;
}
