// Domain example 2: an edge deployment planner (no training).
//
// Uses the device cost model, the model pool and the constraint builders to
// answer the practitioner's question the paper's Section IV formalizes:
// "given my fleet, which model variant does each device get under each
// MHFL method, and what does a round cost?"
//
//   $ ./examples/fleet_planner
#include <cstdio>
#include <map>

#include "constraints/computation_limited.h"
#include "constraints/memory_limited.h"
#include "core/table.h"
#include "device/device_profile.h"
#include "device/ima_fleet.h"

int main() {
  using namespace mhbench;

  // A small fleet: sampled phone-class devices plus the paper's boards.
  device::FleetConfig fcfg;
  fcfg.num_clients = 12;
  fcfg.seed = 42;
  device::Fleet fleet = device::SampleFleet(fcfg);

  std::puts("Fleet (IMA-style sample):");
  AsciiTable fleet_table(
      {"Client", "GFLOP/s", "Bandwidth (Mbps)", "Memory budget (MB)", "GPU"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fleet_table.AddRow({std::to_string(i),
                        AsciiTable::Num(fleet[i].gflops, 2),
                        AsciiTable::Num(fleet[i].bandwidth_mbps, 1),
                        AsciiTable::Num(fleet[i].memory_mb, 0),
                        fleet[i].has_gpu ? "yes" : "no"});
  }
  std::fputs(fleet_table.Render().c_str(), stdout);

  for (const char* constraint : {"computation", "memory"}) {
    std::printf("\nAssignments for ResNet-101 on CIFAR-100, %s-limited:\n",
                constraint);
    AsciiTable table({"Client", "SHeteroFL", "DepthFL", "FeDepth",
                      "round time SHeteroFL (s)"});
    std::map<std::string, constraints::BuiltAssignments> built;
    for (const char* alg : {"sheterofl", "depthfl", "fedepth"}) {
      built[alg] = std::string(constraint) == "computation"
                       ? constraints::BuildComputationLimited(alg, "cifar100",
                                                              fleet)
                       : constraints::BuildMemoryLimited(alg, "cifar100",
                                                         fleet);
    }
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      table.AddRow(
          {std::to_string(i),
           "x" + AsciiTable::Num(built["sheterofl"].assignments[i].capacity, 2),
           "x" + AsciiTable::Num(built["depthfl"].assignments[i].capacity, 2),
           "x" + AsciiTable::Num(built["fedepth"].assignments[i].capacity, 2),
           AsciiTable::Num(
               built["sheterofl"].assignments[i].system.compute_time_s, 1)});
    }
    std::fputs(table.Render().c_str(), stdout);
  }

  std::puts(
      "\nNote how the memory case diverges: DepthFL's high activation\n"
      "footprint (Table I) forces small variants on 4 GB-class devices,\n"
      "while FeDepth's segment-wise training keeps large models feasible —\n"
      "exactly the asymmetry behind the paper's Figure 6 reversal.");
  return 0;
}
