// Domain example 3: human-activity recognition with naturally non-IID
// users and topology-heterogeneous personal models (FedProto).
//
// HAR deployments are the paper's motivating case for topology
// heterogeneity: every user's wearable differs and the data is per-user by
// construction.  This example federates prototype learning across three
// distinct CNN architectures on the UCI-HAR analogue and reports both the
// committee ("global") accuracy and the per-user spread.
//
//   $ ./examples/har_personalization
#include <algorithm>
#include <cstdio>

#include "algorithms/registry.h"
#include "core/table.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

int main() {
  using namespace mhbench;

  data::TaskConfig tcfg;
  tcfg.train_samples = 500;
  tcfg.test_samples = 180;
  tcfg.num_clients = 9;  // users; the natural partition groups by user id
  const data::Task task = data::MakeTask("ucihar", tcfg);
  std::printf("UCI-HAR analogue: %zu train windows, %d users (non-IID)\n\n",
              task.train.size(), task.num_clients);

  const models::TaskModels tm = models::MakeTaskModels(task.name);
  std::puts("Topology family in play:");
  for (std::size_t a = 0; a < tm.topology.size(); ++a) {
    std::printf("  arch %zu: %s\n", a, tm.topology[a]->name().c_str());
  }

  // Assign architectures round-robin (user preference / device class).
  std::vector<fl::ClientAssignment> assignments(
      static_cast<std::size_t>(task.num_clients));
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    assignments[i].arch_index = static_cast<int>(i % tm.topology.size());
  }

  auto algorithm = algorithms::MakeAlgorithm("fedproto", tm);
  fl::FlConfig cfg;
  cfg.rounds = 20;
  cfg.sample_fraction = 0.5;
  cfg.eval_every = 5;
  fl::FlEngine engine(task, cfg, assignments, *algorithm);
  const fl::RunResult result = engine.Run();

  std::printf("\ncommittee accuracy after %d rounds: %.3f\n", cfg.rounds,
              result.final_accuracy);

  AsciiTable table({"User", "Architecture", "Personal accuracy"});
  const int clients = engine.context().num_clients();
  for (int c = 0; c < clients; ++c) {
    const int arch =
        engine.context().assignments[static_cast<std::size_t>(c)].arch_index %
        static_cast<int>(tm.topology.size());
    table.AddRow(
        {std::to_string(c),
         tm.topology[static_cast<std::size_t>(arch)]->name(),
         AsciiTable::Num(
             result.client_accuracies[static_cast<std::size_t>(c)], 3)});
  }
  std::fputs(table.Render().c_str(), stdout);

  const auto [mn, mx] = std::minmax_element(result.client_accuracies.begin(),
                                            result.client_accuracies.end());
  std::printf(
      "\nper-user spread: min %.3f / max %.3f (stability variance %.4f)\n",
      *mn, *mx, result.StabilityVariance());
  std::puts(
      "FedProto never ships weights — only class prototypes — so every\n"
      "user keeps an architecture of their own choice.");
  return 0;
}
