// Domain example 4: the mixed-architecture federation from the paper's
// introduction — "an FL system may consist of diverse model architectures,
// such as ResNet, EfficientNet, MobileNet, and GoogleLeNet" (Section III).
//
// Federates all four CV families with both topology-level algorithms and
// compares committee/server accuracy and per-architecture behaviour.
//
//   $ ./examples/mixed_topology_cv
#include <cstdio>
#include <map>

#include "algorithms/fedet.h"
#include "algorithms/fedproto.h"
#include "core/table.h"
#include "data/tasks.h"
#include "fl/engine.h"
#include "models/zoo.h"

int main() {
  using namespace mhbench;

  data::TaskConfig tcfg;
  tcfg.train_samples = 400;
  tcfg.test_samples = 160;
  tcfg.num_clients = 8;
  const data::Task task = data::MakeTask("cifar10", tcfg);

  const std::vector<models::FamilyPtr> families =
      models::MakeMixedCvFamilies(task.train.num_classes);
  std::puts("Mixed CV architecture pool:");
  Rng probe(1);
  for (std::size_t a = 0; a < families.size(); ++a) {
    auto built = families[a]->Build(models::BuildSpec{}, probe);
    std::printf("  arch %zu: %-18s %6zu params\n", a,
                families[a]->name().c_str(), built.net->NumParams());
  }

  // Every client keeps one architecture (two clients per family).
  std::vector<fl::ClientAssignment> assignments(8);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    assignments[i].arch_index = static_cast<int>(i % families.size());
  }

  fl::FlConfig cfg;
  cfg.rounds = 16;
  cfg.sample_fraction = 0.5;
  cfg.eval_every = 4;
  cfg.lr_schedule = fl::LrScheduleKind::kCosine;

  AsciiTable table({"Algorithm", "Global accuracy", "Stability (var)"});
  {
    algorithms::FedProto fedproto(families, /*lambda=*/1.0, /*proto_dim=*/16,
                                  /*seed=*/7);
    fl::FlEngine engine(task, cfg, assignments, fedproto);
    const auto r = engine.Run();
    table.AddRow({"fedproto", AsciiTable::Num(r.final_accuracy, 3),
                  AsciiTable::Num(r.StabilityVariance(), 4)});
  }
  {
    algorithms::FedEt fedet(families, algorithms::FedEt::Options{},
                            /*seed=*/7);
    fl::FlEngine engine(task, cfg, assignments, fedet);
    const auto r = engine.Run();
    table.AddRow({"fedet", AsciiTable::Num(r.final_accuracy, 3),
                  AsciiTable::Num(r.StabilityVariance(), 4)});
  }
  std::puts("");
  std::fputs(table.Render().c_str(), stdout);
  std::puts(
      "\nFedProto keeps all four architectures fully personal and only\n"
      "exchanges class prototypes; Fed-ET distills the four per-family\n"
      "group models into the largest architecture on a public split.");
  return 0;
}
