// Domain example 1: a practical constraint study.
//
// Reproduces the platform's evaluation track end-to-end for one scenario:
// sample an IMA-style fleet, build the computation-limited assignment for
// each algorithm, run federated training, and print the paper's 2x2 metric
// panel — the programmatic equivalent of one cell of Figure 4.
//
//   $ ./examples/constrained_study [task] [constraint]
//   e.g. ./examples/constrained_study cifar100 memory
#include <cstdio>
#include <string>

#include "bench_support/experiment.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace mhbench;

  bench_support::SuiteOptions options;
  options.task = argc > 1 ? argv[1] : "cifar100";
  options.constraint = argc > 2 ? argv[2] : "computation";
  options.preset.rounds = 16;
  options.preset.clients = 8;

  std::printf("Constraint study: %s under %s-limited MHFL\n\n",
              options.task.c_str(), options.constraint.c_str());

  const auto bundles = bench_support::RunSuite(
      {"fjord", "sheterofl", "fedrolex", "depthfl", "fedepth"}, options);

  std::fputs(metrics::RenderMetricPanel(
                 options.constraint + " / " + options.task, bundles)
                 .c_str(),
             stdout);
  std::fputs(
      metrics::RenderCurves("accuracy vs evaluation checkpoint", bundles)
          .c_str(),
      stdout);

  std::puts("\nReading the panel:");
  std::puts(" - Global acc + time-to-acc (top): overall strength and speed.");
  std::puts(" - Stability: variance across devices (lower = fairer).");
  std::puts(
      " - Effectiveness: gain over the smallest homogeneous FedAvg model —\n"
      "   the paper's test of whether heterogeneity is worth it at all.");
  return 0;
}
